//! The `paper` and `award` dataset generators (Tables 2 and 3), plus the
//! extension `movie` dataset used by the perf sweep.

use cdb_core::QueryTruth;
use cdb_storage::{ColumnDef, ColumnType, Database, Schema, Table, TupleId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dirty::{variant, DirtConfig};
use crate::names::{
    movie_title, paper_title, person_name, pick, studio_name, university_name, AWARD_STEMS,
    CONFERENCES, COUNTRIES, GENRES, PLACE_STEMS,
};

/// Table cardinalities. `paper_full()` and `award_full()` match Tables 2
/// and 3 of the paper; `scaled(f)` shrinks everything by a factor for fast
/// simulation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetScale {
    /// Rows of Paper / Celebrity.
    pub t1: usize,
    /// Rows of Citation / City.
    pub t2: usize,
    /// Rows of Researcher / Winner.
    pub t3: usize,
    /// Rows of University / Award.
    pub t4: usize,
}

impl DatasetScale {
    /// The `paper` dataset sizes of Table 2.
    pub fn paper_full() -> Self {
        DatasetScale { t1: 676, t2: 1239, t3: 911, t4: 830 }
    }

    /// The `award` dataset sizes of Table 3.
    pub fn award_full() -> Self {
        DatasetScale { t1: 1498, t2: 3220, t3: 2669, t4: 1192 }
    }

    /// The `movie` dataset sizes. Not from the paper — an extension
    /// workload with the same 4-table chain shape, sized between `paper`
    /// and `award` so the perf sweep exercises a third matching structure.
    pub fn movie_full() -> Self {
        DatasetScale { t1: 980, t2: 2150, t3: 640, t4: 310 }
    }

    /// Shrink all cardinalities by `1/f` (at least 4 rows each).
    pub fn scaled(self, f: usize) -> Self {
        assert!(f >= 1);
        DatasetScale {
            t1: (self.t1 / f).max(4),
            t2: (self.t2 / f).max(4),
            t3: (self.t3 / f).max(4),
            t4: (self.t4 / f).max(4),
        }
    }

    /// Grow all cardinalities by `m` (the scale-out sweeps: 10x-100x the
    /// paper cardinalities). Checked so a runaway multiplier fails loudly
    /// instead of wrapping into a tiny dataset.
    pub fn times(self, m: usize) -> Self {
        assert!(m >= 1);
        let mul = |v: usize| v.checked_mul(m).expect("dataset scale multiplier overflows usize");
        DatasetScale { t1: mul(self.t1), t2: mul(self.t2), t3: mul(self.t3), t4: mul(self.t4) }
    }

    /// Total rows across the four tables.
    pub fn rows(self) -> usize {
        self.t1 + self.t2 + self.t3 + self.t4
    }
}

/// A generated dataset: the catalog, the data-level ground truth, and the
/// value universe used by COLLECT experiments.
#[derive(Debug)]
pub struct Dataset {
    /// `"paper"`, `"award"`, or `"movie"`.
    pub name: &'static str,
    /// The four generated tables.
    pub db: Database,
    /// Exact ground truth for joins and selections.
    pub truth: QueryTruth,
    /// A closed universe of collectible values (university names / award
    /// names) for the COLLECT experiments.
    pub universe: Vec<String>,
}

/// Generate the `paper` dataset: Paper(author, title, conference),
/// Citation(title, number), Researcher(affiliation, name, gender),
/// University(name, city, country).
///
/// Matching structure: every researcher's affiliation is a dirty variant
/// of some university name (recorded in the truth), every paper's author
/// is a dirty variant of some researcher's name, and roughly 60% of
/// citations reference a real paper with a dirty variant of its title.
pub fn paper_dataset(scale: DatasetScale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dirt = DirtConfig::default();
    let mut db = Database::new();
    let mut truth = QueryTruth::default();

    // University.
    let mut university = Table::new(
        "University",
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("city", ColumnType::Text),
            ColumnDef::new("country", ColumnType::Text),
        ]),
    );
    let mut uni_names = Vec::with_capacity(scale.t4);
    for i in 0..scale.t4 {
        let name = university_name(i, &mut rng);
        let true_usa = rng.gen::<f64>() < 0.5;
        let country = if true_usa {
            if rng.gen::<f64>() < 0.5 {
                "USA"
            } else {
                "US"
            }
        } else {
            pick(&COUNTRIES[1..], &mut rng)
        };
        let city = PLACE_STEMS[i % PLACE_STEMS.len()];
        let row = university
            .push(vec![Value::from(name.as_str()), Value::from(city), Value::from(country)])
            .expect("schema matches");
        if true_usa {
            truth.add_selection(TupleId::new("University", row), "USA");
        }
        uni_names.push(name);
    }

    // Researcher: affiliation is a dirty variant of a university name.
    let mut researcher = Table::new(
        "Researcher",
        Schema::new(vec![
            ColumnDef::new("affiliation", ColumnType::Text),
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("gender", ColumnType::Text),
        ]),
    );
    let mut res_names = Vec::with_capacity(scale.t3);
    for i in 0..scale.t3 {
        // ~70% of researchers truly belong to a listed university; ~20%
        // have a *decoy* affiliation (similar to a university name but a
        // different institution — a truly RED edge); ~10% are outside the
        // table entirely (e.g. "Department of Nutrition" in Table 1).
        let roll: f64 = rng.gen();
        let (affiliation, matched_uni) = if roll < 0.1 {
            (format!("Department of Research {i}"), None)
        } else if roll < 0.3 {
            let j = rng.gen_range(0..uni_names.len());
            (decoy(&uni_names[j], PLACE_STEMS, &mut rng), None)
        } else {
            let j = rng.gen_range(0..uni_names.len());
            (variant(&uni_names[j], &dirt, &mut rng), Some(j))
        };
        // Unique-ify names with an index so name joins are unambiguous.
        let name = format!("{} {}", person_name(&mut rng), to_suffix(i));
        let gender = if rng.gen::<bool>() { "female" } else { "male" };
        let row = researcher
            .push(vec![
                Value::from(affiliation.as_str()),
                Value::from(name.as_str()),
                Value::from(gender),
            ])
            .expect("schema matches");
        if let Some(j) = matched_uni {
            truth.add_join(TupleId::new("Researcher", row), TupleId::new("University", j));
        }
        res_names.push(name);
    }

    // Paper: author is a dirty variant of a researcher's name.
    let mut paper = Table::new(
        "Paper",
        Schema::new(vec![
            ColumnDef::new("author", ColumnType::Text),
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("conference", ColumnType::Text),
        ]),
    );
    let mut paper_titles = Vec::with_capacity(scale.t1);
    for i in 0..scale.t1 {
        // ~65% of papers are authored by a listed researcher; the rest
        // carry a decoy author — a name similar to some researcher's but a
        // different person.
        let j = rng.gen_range(0..res_names.len());
        let (author, matched_res) = if rng.gen::<f64>() < 0.65 {
            (variant(&res_names[j], &dirt, &mut rng), Some(j))
        } else {
            (decoy(&res_names[j], crate::names::LAST_NAMES, &mut rng), None)
        };
        let title = format!("{} ({})", paper_title(&mut rng), to_suffix(i));
        let conference = pick(CONFERENCES, &mut rng);
        let row = paper
            .push(vec![
                Value::from(author.as_str()),
                Value::from(title.as_str()),
                Value::from(conference),
            ])
            .expect("schema matches");
        if let Some(j) = matched_res {
            truth.add_join(TupleId::new("Paper", row), TupleId::new("Researcher", j));
        }
        if conference.starts_with("sigmod") {
            truth.add_selection(TupleId::new("Paper", row), "sigmod");
        }
        paper_titles.push(title);
    }

    // Citation: ~60% reference real papers.
    let mut citation = Table::new(
        "Citation",
        Schema::new(vec![
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("number", ColumnType::Int),
        ]),
    );
    for i in 0..scale.t2 {
        // ~55% of citations reference a listed paper; ~25% are decoys
        // (similar title, different paper); the rest are unrelated.
        let roll: f64 = rng.gen();
        let (title, matched) = if roll < 0.55 {
            let j = rng.gen_range(0..paper_titles.len());
            (variant(&paper_titles[j], &dirt, &mut rng), Some(j))
        } else if roll < 0.8 {
            let j = rng.gen_range(0..paper_titles.len());
            (decoy(&paper_titles[j], crate::names::TITLE_SUBJECTS, &mut rng), None)
        } else {
            (format!("{} [ext {i}]", paper_title(&mut rng)), None)
        };
        let number = rng.gen_range(0..100i64);
        let row = citation
            .push(vec![Value::from(title.as_str()), Value::Int(number)])
            .expect("schema matches");
        if let Some(j) = matched {
            truth.add_join(TupleId::new("Citation", row), TupleId::new("Paper", j));
        }
    }

    db.add_table(paper).expect("fresh catalog");
    db.add_table(citation).expect("fresh catalog");
    db.add_table(researcher).expect("fresh catalog");
    db.add_table(university).expect("fresh catalog");
    Dataset { name: "paper", db, truth, universe: uni_names }
}

/// Generate the `award` dataset: Celebrity(name, birthplace, birthday),
/// City(birthplace, country), Winner(name, award), Award(name, place).
pub fn award_dataset(scale: DatasetScale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dirt = DirtConfig::default();
    let mut db = Database::new();
    let mut truth = QueryTruth::default();

    // City.
    let mut city = Table::new(
        "City",
        Schema::new(vec![
            ColumnDef::new("birthplace", ColumnType::Text),
            ColumnDef::new("country", ColumnType::Text),
        ]),
    );
    let mut city_names = Vec::with_capacity(scale.t2);
    for i in 0..scale.t2 {
        let name = format!("{} {}", PLACE_STEMS[i % PLACE_STEMS.len()], to_suffix(i));
        let true_usa = rng.gen::<f64>() < 0.4;
        let country = if true_usa {
            if rng.gen::<bool>() {
                "USA"
            } else {
                "US"
            }
        } else {
            pick(&COUNTRIES[1..], &mut rng)
        };
        let row = city
            .push(vec![Value::from(name.as_str()), Value::from(country)])
            .expect("schema matches");
        if true_usa {
            truth.add_selection(TupleId::new("City", row), "USA");
        }
        city_names.push(name);
    }

    // Celebrity.
    let mut celebrity = Table::new(
        "Celebrity",
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("birthplace", ColumnType::Text),
            ColumnDef::new("birthday", ColumnType::Text),
        ]),
    );
    let mut celeb_names = Vec::with_capacity(scale.t1);
    for i in 0..scale.t1 {
        let name = format!("{} {}", person_name(&mut rng), to_suffix(i));
        let j = rng.gen_range(0..city_names.len());
        // ~75% of birthplaces truly match a listed city; the rest are
        // decoys (similar spelling, different city).
        let (birthplace, matched_city) = if rng.gen::<f64>() < 0.75 {
            (variant(&city_names[j], &dirt, &mut rng), Some(j))
        } else {
            (decoy(&city_names[j], PLACE_STEMS, &mut rng), None)
        };
        let birthday = format!(
            "19{:02}-{:02}-{:02}",
            rng.gen_range(30..99),
            rng.gen_range(1..13),
            rng.gen_range(1..29)
        );
        let row = celebrity
            .push(vec![
                Value::from(name.as_str()),
                Value::from(birthplace.as_str()),
                Value::from(birthday.as_str()),
            ])
            .expect("schema matches");
        if let Some(j) = matched_city {
            truth.add_join(TupleId::new("Celebrity", row), TupleId::new("City", j));
        }
        celeb_names.push(name);
    }

    // Award.
    let mut award = Table::new(
        "Award",
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("place", ColumnType::Text),
        ]),
    );
    let mut award_names = Vec::with_capacity(scale.t4);
    for i in 0..scale.t4 {
        let name = award_name(i);
        let place = pick(PLACE_STEMS, &mut rng);
        let row = award
            .push(vec![Value::from(name.as_str()), Value::from(place)])
            .expect("schema matches");
        if place == "Boston" {
            truth.add_selection(TupleId::new("Award", row), "Boston");
        }
        award_names.push(name);
    }

    // Winner: name matches a celebrity (~70%), award matches an award.
    let mut winner = Table::new(
        "Winner",
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("award", ColumnType::Text),
        ]),
    );
    for i in 0..scale.t3 {
        // ~55% true celebrity matches, ~25% decoy names (similar but a
        // different person), ~20% entirely outside the table.
        let roll: f64 = rng.gen();
        let (name, matched_celeb) = if roll < 0.55 {
            let j = rng.gen_range(0..celeb_names.len());
            (variant(&celeb_names[j], &dirt, &mut rng), Some(j))
        } else if roll < 0.8 {
            let j = rng.gen_range(0..celeb_names.len());
            (decoy(&celeb_names[j], crate::names::LAST_NAMES, &mut rng), None)
        } else {
            (format!("{} {}", person_name(&mut rng), to_suffix(i + 7000)), None)
        };
        let k = rng.gen_range(0..award_names.len());
        let (award_ref, matched_award) = if rng.gen::<f64>() < 0.75 {
            (variant(&award_names[k], &dirt, &mut rng), Some(k))
        } else {
            (decoy(&award_names[k], crate::names::AWARD_STEMS, &mut rng), None)
        };
        let row = winner
            .push(vec![Value::from(name.as_str()), Value::from(award_ref.as_str())])
            .expect("schema matches");
        if let Some(j) = matched_celeb {
            truth.add_join(TupleId::new("Winner", row), TupleId::new("Celebrity", j));
        }
        if let Some(k) = matched_award {
            truth.add_join(TupleId::new("Winner", row), TupleId::new("Award", k));
        }
    }

    db.add_table(celebrity).expect("fresh catalog");
    db.add_table(city).expect("fresh catalog");
    db.add_table(winner).expect("fresh catalog");
    db.add_table(award).expect("fresh catalog");
    Dataset { name: "award", db, truth, universe: award_names }
}

/// Generate the `movie` dataset: Movie(title, director, genre),
/// Review(title, stars), Director(name, studio), Studio(name, country).
///
/// Same chain shape as the other two datasets — Review ~ Movie ~ Director
/// ~ Studio with selections on Movie.genre (`"drama"`) and Studio.country
/// (`"USA"`) — but a different matching structure: director names are
/// reused across movies (one director authors several movies), so the
/// Movie~Director predicate is denser than the paper dataset's
/// Paper~Researcher one.
pub fn movie_dataset(scale: DatasetScale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dirt = DirtConfig::default();
    let mut db = Database::new();
    let mut truth = QueryTruth::default();

    // Studio.
    let mut studio = Table::new(
        "Studio",
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("country", ColumnType::Text),
        ]),
    );
    let mut studio_names = Vec::with_capacity(scale.t4);
    for i in 0..scale.t4 {
        let name = studio_name(i, &mut rng);
        let true_usa = rng.gen::<f64>() < 0.45;
        let country = if true_usa {
            if rng.gen::<bool>() {
                "USA"
            } else {
                "US"
            }
        } else {
            pick(&COUNTRIES[1..], &mut rng)
        };
        let row = studio
            .push(vec![Value::from(name.as_str()), Value::from(country)])
            .expect("schema matches");
        if true_usa {
            truth.add_selection(TupleId::new("Studio", row), "USA");
        }
        studio_names.push(name);
    }

    // Director: studio is a dirty variant of a studio name.
    let mut director = Table::new(
        "Director",
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("studio", ColumnType::Text),
        ]),
    );
    let mut director_names = Vec::with_capacity(scale.t3);
    for i in 0..scale.t3 {
        let name = format!("{} {}", person_name(&mut rng), to_suffix(i));
        let j = rng.gen_range(0..studio_names.len());
        // ~70% of directors truly work for a listed studio; the rest carry
        // a decoy studio (similar name, different company).
        let (studio_ref, matched_studio) = if rng.gen::<f64>() < 0.7 {
            (variant(&studio_names[j], &dirt, &mut rng), Some(j))
        } else {
            (decoy(&studio_names[j], PLACE_STEMS, &mut rng), None)
        };
        let row = director
            .push(vec![Value::from(name.as_str()), Value::from(studio_ref.as_str())])
            .expect("schema matches");
        if let Some(j) = matched_studio {
            truth.add_join(TupleId::new("Director", row), TupleId::new("Studio", j));
        }
        director_names.push(name);
    }

    // Movie: director is a dirty variant of a listed director's name.
    let mut movie = Table::new(
        "Movie",
        Schema::new(vec![
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("director", ColumnType::Text),
            ColumnDef::new("genre", ColumnType::Text),
        ]),
    );
    let mut movie_titles = Vec::with_capacity(scale.t1);
    for i in 0..scale.t1 {
        let j = rng.gen_range(0..director_names.len());
        // ~65% of movies have a listed director; the rest a decoy name.
        let (director_ref, matched_dir) = if rng.gen::<f64>() < 0.65 {
            (variant(&director_names[j], &dirt, &mut rng), Some(j))
        } else {
            (decoy(&director_names[j], crate::names::LAST_NAMES, &mut rng), None)
        };
        let true_drama = rng.gen::<f64>() < 0.35;
        // "dramatic comedy" and friends stay similar enough to "drama" to
        // form CROWDEQUAL edges that are truly RED.
        let genre = if true_drama { "drama" } else { pick(&GENRES[1..], &mut rng) };
        let title = format!("{} ({})", movie_title(&mut rng), to_suffix(i));
        let row = movie
            .push(vec![
                Value::from(title.as_str()),
                Value::from(director_ref.as_str()),
                Value::from(genre),
            ])
            .expect("schema matches");
        if let Some(j) = matched_dir {
            truth.add_join(TupleId::new("Movie", row), TupleId::new("Director", j));
        }
        if true_drama {
            truth.add_selection(TupleId::new("Movie", row), "drama");
        }
        movie_titles.push(title);
    }

    // Review: ~55% reference a listed movie, ~25% decoys, rest unrelated.
    let mut review = Table::new(
        "Review",
        Schema::new(vec![
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("stars", ColumnType::Int),
        ]),
    );
    for i in 0..scale.t2 {
        let roll: f64 = rng.gen();
        let (title, matched) = if roll < 0.55 {
            let j = rng.gen_range(0..movie_titles.len());
            (variant(&movie_titles[j], &dirt, &mut rng), Some(j))
        } else if roll < 0.8 {
            let j = rng.gen_range(0..movie_titles.len());
            (decoy(&movie_titles[j], crate::names::TITLE_SUBJECTS, &mut rng), None)
        } else {
            (format!("{} [ext {i}]", movie_title(&mut rng)), None)
        };
        let stars = rng.gen_range(0..11i64);
        let row = review
            .push(vec![Value::from(title.as_str()), Value::Int(stars)])
            .expect("schema matches");
        if let Some(j) = matched {
            truth.add_join(TupleId::new("Review", row), TupleId::new("Movie", j));
        }
    }

    db.add_table(movie).expect("fresh catalog");
    db.add_table(review).expect("fresh catalog");
    db.add_table(director).expect("fresh catalog");
    db.add_table(studio).expect("fresh catalog");
    Dataset { name: "movie", db, truth, universe: studio_names }
}

/// Award name for row `i`. The `(stem, year)` pair has period 40, so rows
/// past the first period carry a short suffix — without it, every award
/// name repeats every 40 rows, and at 10x-100x paper scale the Winner ~
/// Award join degenerates: hundreds of byte-identical award tuples each
/// match every winner variant, blowing the similarity graph up
/// quadratically in the scale multiplier. Rows 0..40 keep the historical
/// spelling so small-scale (simulation) datasets are unchanged.
fn award_name(i: usize) -> String {
    let base = format!("{} {}", AWARD_STEMS[i % AWARD_STEMS.len()], 1980 + (i % 40));
    if i < 40 {
        base
    } else {
        format!("{base} {}", to_suffix(i))
    }
}

/// A *decoy* of a reference string: one interior token replaced by a pool
/// word. The result stays similar enough to the original to form a graph
/// edge (the shared tokens dominate), but the ground truth is *no match* —
/// exactly the "Michael Franklin" vs "Michael I. Jordan" confusions of
/// Table 1 that make crowdsourcing necessary. These decoys are what gives
/// tuple-level pruning its leverage: their edges are truly RED and refute
/// whole families of candidate chains.
fn decoy(reference: &str, pool: &[&str], rng: &mut impl Rng) -> String {
    let tokens: Vec<&str> = reference.split_whitespace().collect();
    if tokens.is_empty() {
        return pool[rng.gen_range(0..pool.len())].to_string();
    }
    let i = rng.gen_range(0..tokens.len());
    let replacement = pool[rng.gen_range(0..pool.len())];
    tokens
        .iter()
        .enumerate()
        .map(|(j, t)| if j == i { replacement } else { *t })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Readable, similarity-inert row disambiguator ("aa", "ab", ...): short
/// suffixes keep tuples distinct without dominating q-gram similarity.
fn to_suffix(i: usize) -> String {
    let a = (b'a' + (i / 26 % 26) as u8) as char;
    let b = (b'a' + (i % 26) as u8) as char;
    let c = i / 676;
    if c == 0 {
        format!("{a}{b}")
    } else {
        format!("{a}{b}{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_matches_requested_scale() {
        let d = paper_dataset(DatasetScale::paper_full().scaled(10), 1);
        assert_eq!(d.db.table("Paper").unwrap().row_count(), 67);
        assert_eq!(d.db.table("Citation").unwrap().row_count(), 123);
        assert_eq!(d.db.table("Researcher").unwrap().row_count(), 91);
        assert_eq!(d.db.table("University").unwrap().row_count(), 83);
    }

    #[test]
    fn paper_full_matches_table2() {
        let s = DatasetScale::paper_full();
        assert_eq!((s.t1, s.t2, s.t3, s.t4), (676, 1239, 911, 830));
        let s = DatasetScale::award_full();
        assert_eq!((s.t1, s.t2, s.t3, s.t4), (1498, 3220, 2669, 1192));
    }

    #[test]
    fn ground_truth_is_populated() {
        let d = paper_dataset(DatasetScale::paper_full().scaled(10), 2);
        assert!(!d.truth.joins.is_empty());
        assert!(!d.truth.selections.is_empty());
        // Roughly 65% of papers have a true researcher and 55% of
        // citations a true paper; well over a third of Paper tuples join.
        let paper_joins =
            d.truth.joins.iter().filter(|(a, b)| a.table == "Paper" || b.table == "Paper").count();
        assert!(paper_joins >= d.db.table("Paper").unwrap().row_count() / 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = paper_dataset(DatasetScale::paper_full().scaled(20), 42);
        let b = paper_dataset(DatasetScale::paper_full().scaled(20), 42);
        assert_eq!(
            a.db.table("Paper").unwrap().column_strings("title").unwrap(),
            b.db.table("Paper").unwrap().column_strings("title").unwrap()
        );
        assert_eq!(a.truth.joins, b.truth.joins);
    }

    #[test]
    fn different_seeds_differ() {
        let a = paper_dataset(DatasetScale::paper_full().scaled(20), 1);
        let b = paper_dataset(DatasetScale::paper_full().scaled(20), 2);
        assert_ne!(
            a.db.table("Paper").unwrap().column_strings("author").unwrap(),
            b.db.table("Paper").unwrap().column_strings("author").unwrap()
        );
    }

    #[test]
    fn award_dataset_tables_and_truth() {
        let d = award_dataset(DatasetScale::award_full().scaled(20), 3);
        for t in ["Celebrity", "City", "Winner", "Award"] {
            assert!(d.db.contains_table(t), "{t}");
        }
        assert!(!d.truth.joins.is_empty());
        assert!(!d.universe.is_empty());
    }

    #[test]
    fn movie_dataset_tables_and_truth() {
        let d = movie_dataset(DatasetScale::movie_full().scaled(20), 5);
        for t in ["Movie", "Review", "Director", "Studio"] {
            assert!(d.db.contains_table(t), "{t}");
        }
        assert!(!d.truth.joins.is_empty());
        assert!(!d.truth.selections.is_empty());
        assert!(!d.universe.is_empty());
        // Both selection targets exist: drama movies and USA studios.
        assert!(d.truth.selections.iter().any(|(t, v)| t.table == "Movie" && v == "drama"));
        assert!(d.truth.selections.iter().any(|(t, v)| t.table == "Studio" && v == "USA"));
    }

    #[test]
    fn movie_generation_is_deterministic() {
        let a = movie_dataset(DatasetScale::movie_full().scaled(20), 42);
        let b = movie_dataset(DatasetScale::movie_full().scaled(20), 42);
        assert_eq!(
            a.db.table("Movie").unwrap().column_strings("title").unwrap(),
            b.db.table("Movie").unwrap().column_strings("title").unwrap()
        );
        assert_eq!(a.truth.joins, b.truth.joins);
    }

    #[test]
    fn universe_holds_university_names() {
        let d = paper_dataset(DatasetScale::paper_full().scaled(10), 4);
        assert_eq!(d.universe.len(), 83);
        assert!(d.universe.iter().all(|u| !u.is_empty()));
    }

    #[test]
    fn suffixes_are_short_and_unique() {
        let set: std::collections::HashSet<String> = (0..2000).map(to_suffix).collect();
        assert_eq!(set.len(), 2000);
    }
}
