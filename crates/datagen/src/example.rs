//! The running example of Table 1: four tiny tables whose join graph is
//! Figure 4 of the paper. Used by the quickstart example and by tests
//! that follow the paper's walkthrough.

use cdb_core::QueryTruth;
use cdb_storage::{ColumnDef, ColumnType, Database, Schema, Table, TupleId, Value};

/// Build the Table 1 dataset and its ground truth.
///
/// The three true answers of the paper are
/// `(u12, r12, p8, c12)`, `(u8, r8, p4, c6)` and `(u9, r9, p5, c7)`
/// (1-based ids as printed in the paper; rows here are 0-based).
pub fn paper_example_dataset() -> (Database, QueryTruth) {
    let mut db = Database::new();

    let mut paper = Table::new(
        "Paper",
        Schema::new(vec![
            ColumnDef::new("author", ColumnType::Text),
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("conference", ColumnType::Text),
        ]),
    );
    let papers = [
        (
            "Michael J. Franklin",
            "APrivateClean: Data Cleaning and Differential Privacy.",
            "sigmod16",
        ),
        ("Samuel Madden", "Querying continuous functions in a database system.", "sigmod08"),
        (
            "David J. DeWitt",
            "Query processing on smart SSDs: opportunities and challenges.",
            "acm sigmod",
        ),
        ("W. Bruce Croft", "Optimization strategies for complex queries", "sigir"),
        ("H. V. Jagadish", "CrowdMatcher: crowd-assisted schema matching", "sigmod14"),
        (
            "Hector Garcia-Molina",
            "Exploiting Correlations for Expensive Predicate Evaluation.",
            "sigmod15",
        ),
        ("Aditya G. Parameswaran", "DataSift: a crowd-powered search toolkit", "sigmod14"),
        (
            "Surajit Chaudhuri",
            "Dynamically generating portals for entity-oriented web queries.",
            "sigmod10",
        ),
    ];
    for (a, t, c) in papers {
        paper.push(vec![Value::from(a), Value::from(t), Value::from(c)]).expect("schema");
    }

    let mut researcher = Table::new(
        "Researcher",
        Schema::new(vec![
            ColumnDef::new("affiliation", ColumnType::Text),
            ColumnDef::new("name", ColumnType::Text),
        ]),
    );
    let researchers = [
        ("University of California", "Michael I. Jordan"),
        ("University of California Berkery", "Michael Dahlin"),
        ("University of Chicago", "Michael Franklin"),
        ("Duke Uni.", "David J. Madden"),
        ("University of Minnesota", "David D. Thomas"),
        ("University of Wisconsin", "David DeWitt"),
        ("Department of Nutrition", "David J. Hunter"),
        ("University of Massachusetts", "Bruce W Croft"),
        ("University of Michigan", "H. Jagadish"),
        ("University of Stanford", "Molina Hector"),
        ("University of Cambridge", "Nandan Parameswaran"),
        ("Microsoft Cambridge", "S. Chaudhuri"),
    ];
    for (a, n) in researchers {
        researcher.push(vec![Value::from(a), Value::from(n)]).expect("schema");
    }

    let mut citation = Table::new(
        "Citation",
        Schema::new(vec![
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("number", ColumnType::Int),
        ]),
    );
    let citations = [
        ("Towards a Unified Framework for Data Cleaning and Data Privacy.", 0),
        ("Query continuous functions in database system", 56),
        ("ConQuer: A System for Efficient Querying Over Inconsistent Database.", 13),
        ("Webfind: An Architecture and System for Querying Web Database.", 17),
        ("Adaptive Query Processing and the Grid: Opportunities and Challenges.", 27),
        ("Optimal strategy for complex queries", 94),
        ("CrowdMatcher: crowd-assisted schema match", 9),
        ("Exploit Correlations for Expensive Predicate Evaluation", 0),
        ("DataSift: An Expressive and Accurate Crowd-Powered Search Toolkit.", 16),
        ("A crowd powered search toolkit", 4),
        ("A Crowd Powered System for Similarity Search", 0),
        ("Query portals: dynamically generating portals for entity-oriented web queries.", 1),
    ];
    for (t, n) in citations {
        citation.push(vec![Value::from(t), Value::Int(n)]).expect("schema");
    }

    let mut university = Table::new(
        "University",
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("country", ColumnType::Text),
        ]),
    );
    let universities = [
        ("Univ. of California", "USA"),
        ("Univ. of California Berkery", "USA"),
        ("Univ. of Chicago", "USA"),
        ("Duke Univ.", "USA"),
        ("Univ. of Minnesota", "US"),
        ("Univ. of Wisconsin", "US"),
        ("Depart of Nutrition", "US"),
        ("Univ. of Massachusetts", "US"),
        ("Univ. of Michigan", "US"),
        ("Univ. of Stanford", "USA"),
        ("Univ. of Cambridge", "UK"),
        ("Microsoft", "US"),
    ];
    for (n, c) in universities {
        university.push(vec![Value::from(n), Value::from(c)]).expect("schema");
    }

    db.add_table(paper).expect("fresh catalog");
    db.add_table(researcher).expect("fresh catalog");
    db.add_table(citation).expect("fresh catalog");
    db.add_table(university).expect("fresh catalog");

    // Ground truth per the paper's three answers (0-based rows):
    //   (u12, r12, p8, c12) -> University 11, Researcher 11, Paper 7, Citation 11
    //   (u8,  r8,  p4, c6)  -> University 7,  Researcher 7,  Paper 3, Citation 5
    //   (u9,  r9,  p5, c7)  -> University 8,  Researcher 8,  Paper 4, Citation 6
    let mut truth = QueryTruth::default();
    let answers = [(11usize, 11usize, 7usize, 11usize), (7, 7, 3, 5), (8, 8, 4, 6)];
    for (u, r, p, c) in answers {
        truth.add_join(TupleId::new("Researcher", r), TupleId::new("University", u));
        truth.add_join(TupleId::new("Paper", p), TupleId::new("Researcher", r));
        truth.add_join(TupleId::new("Paper", p), TupleId::new("Citation", c));
    }
    // Additional true pairs visible in Figure 4 that do not complete a
    // chain: (u7, r7) — Department of Nutrition, and (r6 ~ p3 is false;
    // the figure's BLUE partial edges): (u7,r7) blue, (p2,c2) blue.
    truth.add_join(TupleId::new("Researcher", 6), TupleId::new("University", 6));
    truth.add_join(TupleId::new("Paper", 1), TupleId::new("Citation", 1));
    // Selections: papers published at SIGMOD and USA universities.
    for (i, (_, _, conf)) in papers.iter().enumerate() {
        if conf.contains("sigmod") {
            truth.add_selection(TupleId::new("Paper", i), "SIGMOD");
            truth.add_selection(TupleId::new("Paper", i), "sigmod");
        }
    }
    for (i, (_, c)) in universities.iter().enumerate() {
        if *c == "USA" || *c == "US" {
            truth.add_selection(TupleId::new("University", i), "USA");
        }
    }
    (db, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_table1() {
        let (db, _) = paper_example_dataset();
        assert_eq!(db.table("Paper").unwrap().row_count(), 8);
        assert_eq!(db.table("Researcher").unwrap().row_count(), 12);
        assert_eq!(db.table("Citation").unwrap().row_count(), 12);
        assert_eq!(db.table("University").unwrap().row_count(), 12);
    }

    #[test]
    fn truth_contains_three_answer_chains() {
        let (_, truth) = paper_example_dataset();
        assert!(truth.joins_match(&TupleId::new("Paper", 7), &TupleId::new("Citation", 11)));
        assert!(truth.joins_match(&TupleId::new("Researcher", 7), &TupleId::new("University", 7)));
        assert!(!truth.joins_match(&TupleId::new("Paper", 0), &TupleId::new("Citation", 0)));
    }

    #[test]
    fn example_graph_yields_three_true_answers() {
        use cdb_core::{build_query_graph, executor::true_answers, GraphBuildConfig};
        let (db, truth) = paper_example_dataset();
        let sql = "SELECT * FROM Paper, Researcher, Citation, University \
                   WHERE Paper.author CROWDJOIN Researcher.name AND \
                   Paper.title CROWDJOIN Citation.title AND \
                   Researcher.affiliation CROWDJOIN University.name";
        let cdb_cql::Statement::Select(q) = cdb_cql::parse(sql).unwrap() else { panic!() };
        let analyzed = cdb_cql::analyze_select(&q, &db).unwrap();
        let g = build_query_graph(&analyzed, &db, &GraphBuildConfig::default());
        let et = truth.edge_truth(&g);
        let ans = true_answers(&g, &et);
        assert_eq!(ans.len(), 3, "the paper's three answers must be reachable");
    }
}
