//! Seeded sub-generators: small deterministic label pools for harnesses
//! that compose their own workloads (the `cdb-sim` simulation harness)
//! instead of materializing a full [`crate::Dataset`].
//!
//! Every label is a pure function of `(seed, index)` — *not* of the pool
//! size — so a shrinker that trims a pool never respells the survivors,
//! and two pools drawn from the same seed agree on their common prefix.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::dirty::{variant, DirtConfig};
use crate::names;

/// Per-item RNG: splits one pool seed into an independent stream per
/// index, so item `i`'s spelling never depends on how many items exist.
fn item_rng(seed: u64, i: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
}

/// `n` distinct canonical entity names (university-style), seeded.
pub fn entity_pool(n: usize, seed: u64) -> Vec<String> {
    (0..n)
        .map(|i| {
            let mut rng = item_rng(seed, i as u64);
            names::university_name(i, &mut rng)
        })
        .collect()
}

/// A pool of `n` item labels over `clusters` underlying entities: item `i`
/// denotes entity `i % clusters`, spelled as a seeded dirty variant of the
/// entity's canonical name with the entity id pinned as a `#k` suffix.
///
/// The suffix guarantees labels of *different* entities can never
/// normalize equal (no aliasing between equivalence classes), while
/// labels of the *same* entity still vary in spelling — exactly the
/// structure a crowd-join reuse cache must stay sound under.
pub fn cluster_labels(n: usize, clusters: usize, seed: u64, dirt: &DirtConfig) -> Vec<String> {
    assert!(clusters >= 1, "need at least one cluster");
    let canon = entity_pool(clusters, seed ^ 0xC1A5);
    (0..n)
        .map(|i| {
            let k = i % clusters;
            let mut rng = item_rng(seed, i as u64);
            // Roughly half the items keep the canonical spelling; the rest
            // are dirty variants, like a crawled table would hold.
            let name = if rng.gen::<f64>() < 0.5 {
                canon[k].clone()
            } else {
                variant(&canon[k], dirt, &mut rng)
            };
            format!("{name} #{k}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_a_pure_function_of_seed_and_index() {
        let dirt = DirtConfig::default();
        let a = cluster_labels(12, 3, 7, &dirt);
        let b = cluster_labels(12, 3, 7, &dirt);
        assert_eq!(a, b);
        // A shorter pool from the same seed is a prefix of the longer one.
        let short = cluster_labels(5, 3, 7, &dirt);
        assert_eq!(&a[..5], &short[..]);
        // A different seed respells.
        assert_ne!(a, cluster_labels(12, 3, 8, &dirt));
    }

    #[test]
    fn different_entities_never_alias() {
        let dirt = DirtConfig::default();
        let labels = cluster_labels(40, 4, 99, &dirt);
        for (i, a) in labels.iter().enumerate() {
            for (j, b) in labels.iter().enumerate() {
                if i % 4 != j % 4 {
                    assert_ne!(
                        cdb_core::normalize(a),
                        cdb_core::normalize(b),
                        "items {i} and {j} alias across clusters"
                    );
                }
            }
        }
    }

    #[test]
    fn entity_pool_is_distinct() {
        let pool = entity_pool(30, 1);
        for (i, a) in pool.iter().enumerate() {
            for b in &pool[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
