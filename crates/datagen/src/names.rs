//! Deterministic name pools: the raw material the generators compose into
//! universities, researchers, paper titles, celebrities, cities and awards.

use rand::Rng;

pub(crate) const FIRST_NAMES: &[&str] = &[
    "Michael", "David", "Samuel", "Hector", "Aditya", "Surajit", "Bruce", "Jennifer", "Laura",
    "Daniel", "Rachel", "Peter", "Susan", "Thomas", "Anna", "Joseph", "Maria", "James", "Elena",
    "Robert", "Alice", "Victor", "Nina", "George", "Clara", "Henry", "Diana", "Oscar", "Julia",
    "Frank", "Irene", "Walter", "Grace", "Arthur", "Helen", "Louis", "Martha", "Felix", "Nora",
    "Hugo",
];

pub(crate) const LAST_NAMES: &[&str] = &[
    "Franklin",
    "DeWitt",
    "Madden",
    "Garcia",
    "Parameswaran",
    "Chaudhuri",
    "Croft",
    "Jagadish",
    "Jordan",
    "Dahlin",
    "Hunter",
    "Thomas",
    "Stone",
    "Rivera",
    "Klein",
    "Meyer",
    "Wagner",
    "Fischer",
    "Weber",
    "Schmidt",
    "Keller",
    "Vogel",
    "Braun",
    "Krause",
    "Lang",
    "Winter",
    "Sommer",
    "Brandt",
    "Lorenz",
    "Hartmann",
    "Schulz",
    "Berger",
    "Frank",
    "Kaiser",
    "Fuchs",
    "Graf",
    "Roth",
    "Baumann",
    "Seidel",
    "Ernst",
];

pub(crate) const PLACE_STEMS: &[&str] = &[
    "California",
    "Wisconsin",
    "Chicago",
    "Minnesota",
    "Massachusetts",
    "Michigan",
    "Stanford",
    "Cambridge",
    "Oxford",
    "Toronto",
    "Melbourne",
    "Auckland",
    "Singapore",
    "Edinburgh",
    "Heidelberg",
    "Uppsala",
    "Bologna",
    "Coimbra",
    "Salamanca",
    "Leiden",
    "Geneva",
    "Vienna",
    "Prague",
    "Warsaw",
    "Helsinki",
    "Copenhagen",
    "Dublin",
    "Lisbon",
    "Athens",
    "Zurich",
    "Princeton",
    "Columbia",
    "Cornell",
    "Berkeley",
    "Austin",
    "Seattle",
    "Denver",
    "Atlanta",
    "Boston",
    "Portland",
];

pub(crate) const COUNTRIES: &[&str] = &[
    "USA",
    "UK",
    "Canada",
    "Australia",
    "Germany",
    "France",
    "Italy",
    "Spain",
    "Netherlands",
    "Switzerland",
    "Austria",
    "Sweden",
    "Finland",
    "Denmark",
    "Ireland",
    "Portugal",
    "Greece",
    "Poland",
    "Czechia",
    "New Zealand",
];

pub(crate) const TITLE_SUBJECTS: &[&str] = &[
    "Query Processing",
    "Data Cleaning",
    "Entity Resolution",
    "Crowdsourced Joins",
    "Similarity Search",
    "Schema Matching",
    "Truth Inference",
    "Task Assignment",
    "Stream Processing",
    "Approximate Counting",
    "Index Structures",
    "Transaction Management",
    "Graph Analytics",
    "Knowledge Bases",
    "Data Integration",
    "Privacy Preservation",
    "Adaptive Sampling",
    "Workload Forecasting",
    "Cost Estimation",
    "Cardinality Estimation",
];

pub(crate) const TITLE_MODIFIERS: &[&str] = &[
    "Scalable",
    "Adaptive",
    "Crowd-Powered",
    "Distributed",
    "Incremental",
    "Robust",
    "Cost-Effective",
    "Declarative",
    "Optimal",
    "Practical",
    "Interactive",
    "Hybrid",
    "Progressive",
    "Unified",
    "Fine-Grained",
    "Holistic",
    "Efficient",
    "Principled",
    "Learned",
    "Probabilistic",
];

pub(crate) const TITLE_SUFFIXES: &[&str] = &[
    "in Crowdsourcing Markets",
    "over Relational Data",
    "for Heterogeneous Sources",
    "with Human Intelligence",
    "at Web Scale",
    "under Budget Constraints",
    "via Graph Models",
    "with Quality Guarantees",
    "in Modern Databases",
    "for Open-World Queries",
];

pub(crate) const CONFERENCES: &[&str] = &[
    "sigmod16", "sigmod15", "sigmod14", "vldb16", "vldb15", "icde16", "icde15", "kdd16", "sigir15",
    "www16",
];

pub(crate) const AWARD_STEMS: &[&str] = &[
    "Turing Award",
    "Best Paper Award",
    "Test of Time Award",
    "Innovation Award",
    "Dissertation Award",
    "Early Career Award",
    "Fellowship",
    "Medal of Science",
    "Achievement Award",
    "Research Excellence Prize",
    "Distinguished Service Award",
    "Grand Challenge Prize",
    "Young Investigator Award",
    "Lifetime Achievement Award",
    "Outstanding Contribution Award",
    "Pioneer Award",
    "Impact Award",
    "Rising Star Award",
    "Community Award",
    "Visionary Prize",
];

pub(crate) const GENRES: &[&str] = &[
    "drama",
    "dramatic comedy",
    "comedy",
    "thriller",
    "documentary",
    "romance",
    "action",
    "science fiction",
    "horror",
    "animation",
];

pub(crate) const STUDIO_STEMS: &[&str] = &[
    "Pictures",
    "Studios",
    "Films",
    "Entertainment",
    "Productions",
    "Media Works",
    "Cinema Group",
    "Film Partners",
];

/// Deterministically pick one element.
pub(crate) fn pick<'a>(pool: &'a [&'a str], rng: &mut impl Rng) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Compose a synthetic full name.
pub(crate) fn person_name(rng: &mut impl Rng) -> String {
    format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng))
}

/// Compose a synthetic university name.
pub(crate) fn university_name(i: usize, _rng: &mut impl Rng) -> String {
    let stem = PLACE_STEMS[i % PLACE_STEMS.len()];
    // Disambiguate repeats of the same stem.
    let round = i / PLACE_STEMS.len();
    if round == 0 {
        format!("University of {stem}")
    } else if round == 1 {
        format!("{stem} Institute of Technology")
    } else if round == 2 {
        format!("{stem} State University")
    } else {
        format!("University of {stem} Campus {}", round,)
    }
}

/// Compose a synthetic movie title.
pub(crate) fn movie_title(rng: &mut impl Rng) -> String {
    format!("The {} of {}", pick(TITLE_SUBJECTS, rng), pick(PLACE_STEMS, rng))
}

/// Compose a synthetic studio name. Deterministic in `i` and unique for
/// any realistic studio-table cardinality.
pub(crate) fn studio_name(i: usize, _rng: &mut impl Rng) -> String {
    let place = PLACE_STEMS[i % PLACE_STEMS.len()];
    let kind = STUDIO_STEMS[(i / PLACE_STEMS.len()) % STUDIO_STEMS.len()];
    let round = i / (PLACE_STEMS.len() * STUDIO_STEMS.len());
    if round == 0 {
        format!("{place} {kind}")
    } else {
        format!("{place} {kind} {round}")
    }
}

/// Compose a synthetic paper title.
pub(crate) fn paper_title(rng: &mut impl Rng) -> String {
    format!(
        "{} {} {}",
        pick(TITLE_MODIFIERS, rng),
        pick(TITLE_SUBJECTS, rng),
        pick(TITLE_SUFFIXES, rng)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn university_names_unique_for_paper_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let names: std::collections::HashSet<String> =
            (0..830).map(|i| university_name(i, &mut rng)).collect();
        assert_eq!(names.len(), 830);
    }

    #[test]
    fn person_and_title_composition() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = person_name(&mut rng);
        assert!(n.contains(' '));
        let t = paper_title(&mut rng);
        assert!(t.split_whitespace().count() >= 4);
    }
}
