//! The five representative queries of Table 4, per dataset.

/// One benchmark query: the label used in the figures and its CQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Figure label: `2J`, `2J1S`, `3J`, `3J1S`, `3J2S`.
    pub label: &'static str,
    /// The CQL text.
    pub cql: String,
}

/// The Table 4 queries for a dataset (`"paper"` or `"award"`), or the
/// structurally parallel query set for the extension `"movie"` dataset.
///
/// The `paper` queries are verbatim from the table; the `award` queries
/// follow the same structure (the table's right column is partially
/// truncated in the published PDF — see EXPERIMENTS.md).
pub fn queries_for(dataset: &str) -> Vec<QuerySpec> {
    match dataset {
        "paper" => vec![
            QuerySpec {
                label: "2J",
                cql: "SELECT Paper.title, Researcher.affiliation, Citation.number \
                      FROM Paper, Citation, Researcher \
                      WHERE Paper.title CROWDJOIN Citation.title AND \
                      Paper.author CROWDJOIN Researcher.name"
                    .into(),
            },
            QuerySpec {
                label: "2J1S",
                cql: "SELECT Paper.title, Researcher.affiliation, Citation.number \
                      FROM Paper, Citation, Researcher \
                      WHERE Paper.title CROWDJOIN Citation.title AND \
                      Paper.author CROWDJOIN Researcher.name AND \
                      Paper.conference CROWDEQUAL \"sigmod\""
                    .into(),
            },
            QuerySpec {
                label: "3J",
                cql: "SELECT Paper.title, Citation.number, University.country \
                      FROM Paper, Citation, Researcher, University \
                      WHERE Paper.title CROWDJOIN Citation.title AND \
                      Paper.author CROWDJOIN Researcher.name AND \
                      University.name CROWDJOIN Researcher.affiliation"
                    .into(),
            },
            QuerySpec {
                label: "3J1S",
                cql: "SELECT Paper.title, Citation.number \
                      FROM Paper, Citation, Researcher, University \
                      WHERE Paper.title CROWDJOIN Citation.title AND \
                      Paper.author CROWDJOIN Researcher.name AND \
                      University.name CROWDJOIN Researcher.affiliation AND \
                      University.country CROWDEQUAL \"USA\""
                    .into(),
            },
            QuerySpec {
                label: "3J2S",
                cql: "SELECT Paper.title, Citation.number \
                      FROM Paper, Citation, Researcher, University \
                      WHERE Paper.title CROWDJOIN Citation.title AND \
                      Paper.author CROWDJOIN Researcher.name AND \
                      University.name CROWDJOIN Researcher.affiliation AND \
                      Paper.conference CROWDEQUAL \"sigmod\" AND \
                      University.country CROWDEQUAL \"USA\""
                    .into(),
            },
        ],
        "award" => vec![
            QuerySpec {
                label: "2J",
                cql: "SELECT Winner.award, City.country \
                      FROM Winner, City, Celebrity \
                      WHERE Celebrity.name CROWDJOIN Winner.name AND \
                      Celebrity.birthplace CROWDJOIN City.birthplace"
                    .into(),
            },
            QuerySpec {
                label: "2J1S",
                cql: "SELECT Winner.award, City.country \
                      FROM Winner, City, Celebrity \
                      WHERE Celebrity.name CROWDJOIN Winner.name AND \
                      Celebrity.birthplace CROWDJOIN City.birthplace AND \
                      City.country CROWDEQUAL \"USA\""
                    .into(),
            },
            QuerySpec {
                label: "3J",
                cql: "SELECT Winner.name, Award.place \
                      FROM Winner, City, Celebrity, Award \
                      WHERE Celebrity.name CROWDJOIN Winner.name AND \
                      Celebrity.birthplace CROWDJOIN City.birthplace AND \
                      Winner.award CROWDJOIN Award.name"
                    .into(),
            },
            QuerySpec {
                label: "3J1S",
                cql: "SELECT Winner.name, City.country \
                      FROM Winner, City, Celebrity, Award \
                      WHERE Celebrity.name CROWDJOIN Winner.name AND \
                      Celebrity.birthplace CROWDJOIN City.birthplace AND \
                      Winner.award CROWDJOIN Award.name AND \
                      City.country CROWDEQUAL \"USA\""
                    .into(),
            },
            QuerySpec {
                label: "3J2S",
                cql: "SELECT Winner.name, City.country \
                      FROM Winner, City, Celebrity, Award \
                      WHERE Celebrity.name CROWDJOIN Winner.name AND \
                      Celebrity.birthplace CROWDJOIN City.birthplace AND \
                      Winner.award CROWDJOIN Award.name AND \
                      City.country CROWDEQUAL \"USA\" AND \
                      Award.place CROWDEQUAL \"Boston\""
                    .into(),
            },
        ],
        "movie" => vec![
            QuerySpec {
                label: "2J",
                cql: "SELECT Movie.title, Review.stars, Director.studio \
                      FROM Movie, Review, Director \
                      WHERE Movie.title CROWDJOIN Review.title AND \
                      Movie.director CROWDJOIN Director.name"
                    .into(),
            },
            QuerySpec {
                label: "2J1S",
                cql: "SELECT Movie.title, Review.stars, Director.studio \
                      FROM Movie, Review, Director \
                      WHERE Movie.title CROWDJOIN Review.title AND \
                      Movie.director CROWDJOIN Director.name AND \
                      Movie.genre CROWDEQUAL \"drama\""
                    .into(),
            },
            QuerySpec {
                label: "3J",
                cql: "SELECT Movie.title, Review.stars, Studio.country \
                      FROM Movie, Review, Director, Studio \
                      WHERE Movie.title CROWDJOIN Review.title AND \
                      Movie.director CROWDJOIN Director.name AND \
                      Director.studio CROWDJOIN Studio.name"
                    .into(),
            },
            QuerySpec {
                label: "3J1S",
                cql: "SELECT Movie.title, Review.stars \
                      FROM Movie, Review, Director, Studio \
                      WHERE Movie.title CROWDJOIN Review.title AND \
                      Movie.director CROWDJOIN Director.name AND \
                      Director.studio CROWDJOIN Studio.name AND \
                      Studio.country CROWDEQUAL \"USA\""
                    .into(),
            },
            QuerySpec {
                label: "3J2S",
                cql: "SELECT Movie.title, Review.stars \
                      FROM Movie, Review, Director, Studio \
                      WHERE Movie.title CROWDJOIN Review.title AND \
                      Movie.director CROWDJOIN Director.name AND \
                      Director.studio CROWDJOIN Studio.name AND \
                      Movie.genre CROWDEQUAL \"drama\" AND \
                      Studio.country CROWDEQUAL \"USA\""
                    .into(),
            },
        ],
        other => panic!("unknown dataset `{other}` (expected \"paper\", \"award\", or \"movie\")"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_cql::{parse, Statement};

    #[test]
    fn five_queries_per_dataset() {
        for ds in ["paper", "award", "movie"] {
            let qs = queries_for(ds);
            assert_eq!(qs.len(), 5, "{ds}");
            assert_eq!(
                qs.iter().map(|q| q.label).collect::<Vec<_>>(),
                vec!["2J", "2J1S", "3J", "3J1S", "3J2S"]
            );
        }
    }

    #[test]
    fn all_queries_parse() {
        for ds in ["paper", "award", "movie"] {
            for q in queries_for(ds) {
                let stmt = parse(&q.cql).unwrap_or_else(|e| panic!("{ds}/{}: {e}", q.label));
                assert!(matches!(stmt, Statement::Select(_)));
            }
        }
    }

    #[test]
    fn labels_match_join_and_selection_counts() {
        for ds in ["paper", "award", "movie"] {
            for q in queries_for(ds) {
                let Statement::Select(sel) = parse(&q.cql).unwrap() else { panic!() };
                let joins = sel.predicates.iter().filter(|p| p.is_join()).count();
                let sels = sel.predicates.len() - joins;
                let expect_j = q.label.as_bytes()[0] - b'0';
                let expect_s = if q.label.len() > 2 { q.label.as_bytes()[2] - b'0' } else { 0 };
                assert_eq!(joins, expect_j as usize, "{ds}/{}", q.label);
                assert_eq!(sels, expect_s as usize, "{ds}/{}", q.label);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        queries_for("nope");
    }
}
