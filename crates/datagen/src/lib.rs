//! Synthetic dataset generators for the CDB experiments.
//!
//! The paper evaluates on two crawled datasets — `paper` (ACM/DBLP; Tables
//! Paper 676, Citation 1239, Researcher 911, University 830) and `award`
//! (DBpedia/Yago; Celebrity 1498, City 3220, Winner 2669, Award 1192).
//! Those crawls are not redistributable, so this crate generates synthetic
//! datasets with the same schemas, the same cardinalities and — the part
//! the experiments actually depend on — the same *matching structure*:
//! a controlled fraction of tuples in each joined column pair are dirty
//! variants of one another (abbreviations, typos, dropped tokens), and the
//! generator records the exact ground truth of which pairs match, so
//! F-measure is computable. See DESIGN.md for the substitution argument.
//!
//! The crate also provides the five representative queries of Table 4 per
//! dataset, the tiny running example of Table 1, and the paper-scale
//! defaults behind Tables 2 and 3.

mod dirty;
mod example;
mod names;
mod pools;
mod queries;
mod scenario;

pub use dirty::{abbreviate, drop_token, typo, variant, DirtConfig};
pub use example::paper_example_dataset;
pub use pools::{cluster_labels, entity_pool};
pub use queries::{queries_for, QuerySpec};
pub use scenario::{award_dataset, movie_dataset, paper_dataset, Dataset, DatasetScale};
