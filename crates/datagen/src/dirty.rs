//! Dirty-string generation: the representation variants crowd workers and
//! crawled sources produce.

use rand::Rng;

/// Controls how aggressively variants differ from the canonical string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtConfig {
    /// Probability of abbreviating a known long token.
    pub abbreviate_prob: f64,
    /// Probability of injecting a character-level typo.
    pub typo_prob: f64,
    /// Probability of dropping one token (for strings with ≥ 3 tokens).
    pub drop_token_prob: f64,
}

impl Default for DirtConfig {
    fn default() -> Self {
        DirtConfig { abbreviate_prob: 0.5, typo_prob: 0.4, drop_token_prob: 0.15 }
    }
}

/// Abbreviation table: the kinds of token rewrites seen in Table 1 of the
/// paper ("University" → "Univ.", "Department" → "Depart", …).
const ABBREVIATIONS: &[(&str, &str)] = &[
    ("University", "Univ."),
    ("Institute", "Inst."),
    ("Department", "Depart"),
    ("Technology", "Tech."),
    ("International", "Intl."),
    ("Proceedings", "Proc."),
    ("Conference", "Conf."),
    ("Journal", "J."),
    ("Professor", "Prof."),
    ("Laboratory", "Lab"),
];

/// Apply one abbreviation if any abbreviatable token occurs; otherwise
/// return the input unchanged.
pub fn abbreviate(s: &str) -> String {
    for (long, short) in ABBREVIATIONS {
        if s.contains(long) {
            return s.replacen(long, short, 1);
        }
    }
    s.to_string()
}

/// Inject one character-level typo (delete, duplicate or transpose) at a
/// random interior position. Strings shorter than 4 characters are
/// returned unchanged.
pub fn typo(s: &str, rng: &mut impl Rng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 4 {
        return s.to_string();
    }
    let mut out = chars;
    let i = rng.gen_range(1..out.len() - 1);
    match rng.gen_range(0..3u8) {
        0 => {
            out.remove(i);
        }
        1 => {
            let c = out[i];
            out.insert(i, c);
        }
        _ => out.swap(i, i + 1),
    }
    out.into_iter().collect()
}

/// Drop one non-first token from a multi-token string.
pub fn drop_token(s: &str, rng: &mut impl Rng) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 3 {
        return s.to_string();
    }
    let i = rng.gen_range(1..tokens.len());
    tokens
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, t)| *t)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Produce a dirty variant of `s`: a random composition of abbreviation,
/// typo and token drop per `cfg`. The result usually remains similar
/// enough to exceed the ε = 0.3 graph threshold, as the paper's real data
/// does.
pub fn variant(s: &str, cfg: &DirtConfig, rng: &mut impl Rng) -> String {
    let mut out = s.to_string();
    if rng.gen::<f64>() < cfg.abbreviate_prob {
        out = abbreviate(&out);
    }
    if rng.gen::<f64>() < cfg.drop_token_prob {
        out = drop_token(&out, rng);
    }
    if rng.gen::<f64>() < cfg.typo_prob {
        out = typo(&out, rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_similarity::{SimilarityFn, SimilarityMeasure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn abbreviate_rewrites_known_tokens() {
        assert_eq!(abbreviate("University of California"), "Univ. of California");
        assert_eq!(abbreviate("MIT"), "MIT");
    }

    #[test]
    fn typo_changes_long_strings_only() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(typo("abc", &mut rng), "abc");
        let t = typo("Stanford University", &mut rng);
        assert_ne!(t, "Stanford University");
    }

    #[test]
    fn drop_token_keeps_first_token() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = drop_token("University of Southern California", &mut rng);
        assert!(d.starts_with("University"));
        assert!(d.split_whitespace().count() == 3);
        assert_eq!(drop_token("two tokens", &mut rng), "two tokens");
    }

    #[test]
    fn variants_stay_above_graph_threshold_mostly() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = SimilarityFn::QGramJaccard { q: 2 };
        let mut above = 0;
        let n = 200;
        for _ in 0..n {
            let v =
                variant("University of Massachusetts Amherst", &DirtConfig::default(), &mut rng);
            if f.similarity("University of Massachusetts Amherst", &v) >= 0.3 {
                above += 1;
            }
        }
        assert!(above as f64 / n as f64 > 0.9, "{above}/{n}");
    }

    #[test]
    fn variant_is_deterministic_per_seed() {
        let cfg = DirtConfig::default();
        let a = variant("University of Chicago", &cfg, &mut StdRng::seed_from_u64(9));
        let b = variant("University of Chicago", &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
