//! Assignment metadata: who answered what.
//!
//! CDB "maintain[s] the assignment of a task to a worker as well as the
//! corresponding result" (§2.1, MetaData & Statistics). Truth inference and
//! worker-quality estimation read this log.

use std::collections::BTreeMap;

use crate::{Answer, TaskId, WorkerId};

/// One (task, worker, answer) record.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Task answered.
    pub task: TaskId,
    /// Answering worker.
    pub worker: WorkerId,
    /// The answer given.
    pub answer: Answer,
    /// Round in which the answer was collected (latency bookkeeping).
    pub round: usize,
}

/// Append-only log of assignments, indexed by task.
#[derive(Debug, Clone, Default)]
pub struct AssignmentLog {
    by_task: BTreeMap<TaskId, Vec<Assignment>>,
    total: usize,
}

impl AssignmentLog {
    /// Empty log.
    pub fn new() -> Self {
        AssignmentLog::default()
    }

    /// Record one answer.
    pub fn record(&mut self, a: Assignment) {
        self.by_task.entry(a.task).or_default().push(a);
        self.total += 1;
    }

    /// All answers for one task (empty slice if none).
    pub fn answers(&self, task: TaskId) -> &[Assignment] {
        self.by_task.get(&task).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct tasks with at least one answer.
    pub fn task_count(&self) -> usize {
        self.by_task.len()
    }

    /// Total number of assignments.
    pub fn assignment_count(&self) -> usize {
        self.total
    }

    /// Iterate over `(task, answers)` pairs in task order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &[Assignment])> {
        self.by_task.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// All `(task, worker, choice)` triples for single-choice tasks —
    /// the input shape wanted by EM truth inference.
    pub fn choice_triples(&self) -> Vec<(TaskId, WorkerId, usize)> {
        let mut out = Vec::with_capacity(self.total);
        for (t, answers) in self.iter() {
            for a in answers {
                if let Answer::Choice(c) = a.answer {
                    out.push((t, a.worker, c));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(task: u64, worker: u32, choice: usize, round: usize) -> Assignment {
        Assignment {
            task: TaskId(task),
            worker: WorkerId(worker),
            answer: Answer::Choice(choice),
            round,
        }
    }

    #[test]
    fn record_and_read_back() {
        let mut log = AssignmentLog::new();
        log.record(asg(1, 1, 0, 0));
        log.record(asg(1, 2, 1, 0));
        log.record(asg(2, 1, 0, 1));
        assert_eq!(log.answers(TaskId(1)).len(), 2);
        assert_eq!(log.answers(TaskId(3)).len(), 0);
        assert_eq!(log.task_count(), 2);
        assert_eq!(log.assignment_count(), 3);
    }

    #[test]
    fn choice_triples_flatten_choice_answers_only() {
        let mut log = AssignmentLog::new();
        log.record(asg(1, 1, 0, 0));
        log.record(Assignment {
            task: TaskId(1),
            worker: WorkerId(2),
            answer: Answer::Text("free".into()),
            round: 0,
        });
        let triples = log.choice_triples();
        assert_eq!(triples, vec![(TaskId(1), WorkerId(1), 0)]);
    }

    #[test]
    fn iteration_is_task_ordered() {
        let mut log = AssignmentLog::new();
        log.record(asg(5, 1, 0, 0));
        log.record(asg(2, 1, 0, 0));
        let order: Vec<u64> = log.iter().map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![2, 5]);
    }
}
