//! Crowd task model: the four UI types of CDB.

use serde::{Deserialize, Serialize};

/// Opaque task identifier, unique within one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The four task UIs supported by CDB's Crowd UI Designer (§2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Select exactly one of `choices`.
    SingleChoice {
        /// Question shown to the worker.
        question: String,
        /// The candidate answers.
        choices: Vec<String>,
    },
    /// Select any subset of `choices`.
    MultiChoice {
        /// Question shown to the worker.
        question: String,
        /// The candidate answers.
        choices: Vec<String>,
    },
    /// Type a free-form value (e.g. the affiliation of a professor).
    FillInBlank {
        /// Question shown to the worker.
        question: String,
    },
    /// Contribute a new tuple (e.g. one of the top-100 universities).
    Collection {
        /// Prompt shown to the worker.
        prompt: String,
    },
}

impl TaskKind {
    /// Number of choices for choice tasks, `None` for open tasks.
    pub fn choice_count(&self) -> Option<usize> {
        match self {
            TaskKind::SingleChoice { choices, .. } | TaskKind::MultiChoice { choices, .. } => {
                Some(choices.len())
            }
            TaskKind::FillInBlank { .. } | TaskKind::Collection { .. } => None,
        }
    }
}

/// A worker's answer to one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// Index into the choices of a single-choice task.
    Choice(usize),
    /// Indices into the choices of a multi-choice task (sorted, unique).
    Choices(Vec<usize>),
    /// Free text for fill-in-blank and collection tasks.
    Text(String),
}

impl Answer {
    /// Build a normalized multi-choice answer (sorted, deduplicated).
    pub fn choices(mut idx: Vec<usize>) -> Self {
        idx.sort_unstable();
        idx.dedup();
        Answer::Choices(idx)
    }
}

/// A published crowd task.
///
/// `truth` is the simulation-only latent ground truth used to generate
/// worker answers; real deployments would not know it. Keeping it on the
/// task (rather than in a side table) mirrors how the benchmark driver
/// scores F-measure.
///
/// `difficulty ∈ [0, 1]` controls the simulated error model: at 1.0 a
/// worker answers correctly with exactly their latent accuracy `q` (the
/// paper's flat simulation model); at lower difficulty the task is easier
/// and the correctness probability rises toward `q + 0.9·(1 − q)`. Join
/// checks derive difficulty from the pair's similarity — "University of
/// California" vs "University of Wisconsin" is obvious to a human even
/// when the 2-gram similarity clears the graph threshold (see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// UI type and payload.
    pub kind: TaskKind,
    /// Latent ground truth (simulation only).
    pub truth: Option<Answer>,
    /// Simulated difficulty in `[0, 1]`; 1.0 = the flat error model.
    pub difficulty: f64,
    /// For join checks: the raw `(left, right)` value pair the question was
    /// built from, so the answer-reuse layer can key its cache on values
    /// instead of parsing the question text. `None` for other task kinds.
    pub values: Option<(String, String)>,
    /// Similarity measure / predicate this question evaluates (e.g. the
    /// query predicate's description). The answer-reuse layer keys its
    /// cache on `(measure, value-pair)` so tasks comparing the same labels
    /// under *different* equivalence relations never conflate. `None`
    /// (treated as the empty measure) for tasks outside any query plan.
    pub measure: Option<String>,
}

/// Difficulty of a join check on a value pair with similarity `w`:
/// maximal (1.0) for genuinely confusable pairs around `w ≈ 0.65`,
/// decaying linearly to 0 for obvious non-matches (`w ≤ 0.35`) and obvious
/// matches (`w ≥ 0.95`).
pub fn join_difficulty(w: f64) -> f64 {
    let d = if w < 0.65 { (w - 0.35) / 0.30 } else { (0.95 - w) / 0.30 };
    d.clamp(0.0, 1.0)
}

impl Task {
    /// A yes/no single-choice task — the edge-checking task of the graph
    /// model ("can these two values be joined?"). Choice 0 = yes, 1 = no.
    pub fn join_check(id: TaskId, left: &str, right: &str, truth_yes: bool) -> Self {
        Task {
            id,
            kind: TaskKind::SingleChoice {
                question: format!("Do \"{left}\" and \"{right}\" refer to the same entity?"),
                choices: vec!["yes".to_string(), "no".to_string()],
            },
            truth: Some(Answer::Choice(usize::from(!truth_yes))),
            difficulty: 1.0,
            values: Some((left.to_string(), right.to_string())),
            measure: None,
        }
    }

    /// Set the simulated difficulty (builder style).
    pub fn with_difficulty(mut self, difficulty: f64) -> Self {
        self.difficulty = difficulty.clamp(0.0, 1.0);
        self
    }

    /// Set the similarity measure / predicate the question evaluates
    /// (builder style) — the answer-reuse cache namespace.
    pub fn with_measure(mut self, measure: impl Into<String>) -> Self {
        self.measure = Some(measure.into());
        self
    }

    /// True ground-truth "yes" for a join-check task.
    pub fn truth_is_yes(&self) -> Option<bool> {
        match &self.truth {
            Some(Answer::Choice(i)) => Some(*i == 0),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_check_encodes_truth_in_choice_zero() {
        let t = Task::join_check(TaskId(1), "MIT", "M.I.T.", true);
        assert_eq!(t.truth, Some(Answer::Choice(0)));
        assert_eq!(t.truth_is_yes(), Some(true));
        let f = Task::join_check(TaskId(2), "MIT", "Stanford", false);
        assert_eq!(f.truth, Some(Answer::Choice(1)));
        assert_eq!(f.truth_is_yes(), Some(false));
    }

    #[test]
    fn choice_count() {
        let t = Task::join_check(TaskId(1), "a", "b", true);
        assert_eq!(t.kind.choice_count(), Some(2));
        let f = TaskKind::FillInBlank { question: "q".into() };
        assert_eq!(f.choice_count(), None);
    }

    #[test]
    fn multi_choice_answers_normalize() {
        assert_eq!(Answer::choices(vec![2, 0, 2, 1]), Answer::Choices(vec![0, 1, 2]));
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(7).to_string(), "t7");
    }
}
