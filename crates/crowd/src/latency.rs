//! Simulated worker response-time model.
//!
//! Real crowd rounds do not complete in lockstep: each worker takes their
//! own time to pick up and answer a HIT. The runtime advances a *virtual
//! clock* (milliseconds of simulated time) and this model supplies each
//! assignment's response latency: a per-worker persistent speed factor
//! (slow workers stay slow across tasks) times per-assignment log-normal
//! jitter.

use rand::Rng;

use crate::stream::stream_rng;
use crate::WorkerId;

/// Virtual time, in milliseconds since a query started executing.
pub type SimTime = u64;

/// Log-normal response-latency model with persistent per-worker speeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Seed shaping the per-worker persistent speed factors.
    pub seed: u64,
    /// Mean response time of a median worker, in virtual milliseconds.
    pub mean_ms: f64,
    /// Log-normal sigma of the persistent per-worker speed factor.
    pub worker_sigma: f64,
    /// Log-normal sigma of the per-assignment jitter.
    pub jitter_sigma: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // About a minute per answer — the order of magnitude the paper's
        // AMT experiments observe for packed HITs (§6.3).
        LatencyModel { seed: 0, mean_ms: 60_000.0, worker_sigma: 0.5, jitter_sigma: 0.35 }
    }
}

impl LatencyModel {
    /// The persistent speed factor of one worker: a pure function of
    /// `(seed, worker)`, so it is stable across tasks, rounds and threads.
    pub fn worker_factor(&self, worker: WorkerId) -> f64 {
        let mut rng = stream_rng(self.seed, &[0xFAC7, u64::from(worker.0)]);
        (self.worker_sigma * std_normal(&mut rng)).exp()
    }

    /// Sample one assignment's response latency, drawing the jitter from
    /// `rng`. Always at least 1 virtual millisecond.
    pub fn sample(&self, worker: WorkerId, rng: &mut impl Rng) -> SimTime {
        let jitter = (self.jitter_sigma * std_normal(rng)).exp();
        let ms = self.mean_ms * self.worker_factor(worker) * jitter;
        ms.max(1.0) as SimTime
    }
}

/// One standard-normal draw via Box–Muller.
fn std_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn worker_factor_is_stable_and_worker_specific() {
        let m = LatencyModel::default();
        assert_eq!(m.worker_factor(WorkerId(3)), m.worker_factor(WorkerId(3)));
        assert_ne!(m.worker_factor(WorkerId(3)), m.worker_factor(WorkerId(4)));
    }

    #[test]
    fn samples_are_positive_and_centered_near_the_mean() {
        let m = LatencyModel { seed: 9, mean_ms: 1000.0, worker_sigma: 0.0, jitter_sigma: 0.2 };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        let total: u64 = (0..n).map(|_| m.sample(WorkerId(0), &mut rng)).sum();
        let mean = total as f64 / n as f64;
        // exp(sigma^2/2) bias aside, the mean should land near 1000ms.
        assert!(mean > 800.0 && mean < 1300.0, "mean = {mean}");
    }

    #[test]
    fn slow_workers_stay_slow() {
        let m = LatencyModel { seed: 4, mean_ms: 1000.0, worker_sigma: 1.0, jitter_sigma: 0.0 };
        let (slow, fast) = {
            let a = m.worker_factor(WorkerId(0));
            let b = m.worker_factor(WorkerId(1));
            if a > b {
                (WorkerId(0), WorkerId(1))
            } else {
                (WorkerId(1), WorkerId(0))
            }
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..16 {
            assert!(m.sample(slow, &mut rng) > m.sample(fast, &mut rng));
        }
    }
}
