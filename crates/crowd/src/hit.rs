//! HIT packing: group tasks into human-intelligence tasks.
//!
//! The paper's real experiments "pack 10 tasks in each HIT with \$0.1 as its
//! price" (§6.3). Monetary cost is `#HITs * price * redundancy`.

use crate::TaskId;

/// HIT packing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitConfig {
    /// Tasks per HIT (paper: 10).
    pub tasks_per_hit: usize,
    /// Price per HIT in dollars (paper: 0.1).
    pub price_per_hit: f64,
}

impl Default for HitConfig {
    fn default() -> Self {
        HitConfig { tasks_per_hit: 10, price_per_hit: 0.1 }
    }
}

/// A published HIT: an ordered batch of task ids answered together.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Position in the publish order.
    pub index: usize,
    /// Tasks inside this HIT.
    pub tasks: Vec<TaskId>,
}

/// Pack tasks into HITs of `cfg.tasks_per_hit`, preserving order; the last
/// HIT may be short.
pub fn pack_hits(tasks: &[TaskId], cfg: HitConfig) -> Vec<Hit> {
    assert!(cfg.tasks_per_hit > 0, "tasks_per_hit must be positive");
    tasks
        .chunks(cfg.tasks_per_hit)
        .enumerate()
        .map(|(index, chunk)| Hit { index, tasks: chunk.to_vec() })
        .collect()
}

impl HitConfig {
    /// Dollar cost of publishing `task_count` tasks with `redundancy`
    /// assignments each.
    pub fn cost(&self, task_count: usize, redundancy: usize) -> f64 {
        let hits = task_count.div_ceil(self.tasks_per_hit);
        hits as f64 * self.price_per_hit * redundancy as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<TaskId> {
        (0..n).map(TaskId).collect()
    }

    #[test]
    fn packs_into_full_and_partial_hits() {
        let hits = pack_hits(&ids(23), HitConfig::default());
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].tasks.len(), 10);
        assert_eq!(hits[2].tasks.len(), 3);
        assert_eq!(hits[1].index, 1);
    }

    #[test]
    fn empty_task_list_packs_to_no_hits() {
        assert!(pack_hits(&[], HitConfig::default()).is_empty());
    }

    #[test]
    fn cost_follows_paper_pricing() {
        let cfg = HitConfig::default();
        // 23 tasks -> 3 HITs -> $0.3 per assignment; 5 workers -> $1.5.
        assert!((cfg.cost(23, 5) - 1.5).abs() < 1e-12);
        assert_eq!(cfg.cost(0, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "tasks_per_hit")]
    fn zero_sized_hits_rejected() {
        pack_hits(&ids(3), HitConfig { tasks_per_hit: 0, price_per_hit: 0.1 });
    }
}
