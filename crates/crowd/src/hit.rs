//! HIT packing: group tasks into human-intelligence tasks.
//!
//! The paper's real experiments "pack 10 tasks in each HIT with \$0.1 as its
//! price" (§6.3). Monetary cost is `#HITs * price * redundancy`.

use crate::TaskId;

/// HIT packing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitConfig {
    /// Tasks per HIT (paper: 10).
    pub tasks_per_hit: usize,
    /// Price per HIT in dollars (paper: 0.1).
    pub price_per_hit: f64,
}

impl Default for HitConfig {
    fn default() -> Self {
        HitConfig { tasks_per_hit: 10, price_per_hit: 0.1 }
    }
}

/// A published HIT: an ordered batch of task ids answered together.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Position in the publish order.
    pub index: usize,
    /// Tasks inside this HIT.
    pub tasks: Vec<TaskId>,
}

/// Pack tasks into HITs of `cfg.tasks_per_hit`, preserving order; the last
/// HIT may be short.
pub fn pack_hits(tasks: &[TaskId], cfg: HitConfig) -> Vec<Hit> {
    assert!(cfg.tasks_per_hit > 0, "tasks_per_hit must be positive");
    tasks
        .chunks(cfg.tasks_per_hit)
        .enumerate()
        .map(|(index, chunk)| Hit { index, tasks: chunk.to_vec() })
        .collect()
}

impl HitConfig {
    /// Dollar cost of publishing `task_count` tasks with `redundancy`
    /// assignments each.
    pub fn cost(&self, task_count: usize, redundancy: usize) -> f64 {
        let hits = task_count.div_ceil(self.tasks_per_hit);
        hits as f64 * self.price_per_hit * redundancy as f64
    }

    /// Price per HIT in integer cents.
    ///
    /// This is the single f64→cents boundary: `price_per_hit` is dollars
    /// (paper notation), everything downstream (obsv counters, per-query
    /// attribution) is integer cents. Round-to-nearest happens exactly once,
    /// here — all splits after this point are integer arithmetic, so a
    /// partial shared HIT can neither drop nor double-count a cent.
    pub fn price_cents(&self) -> u64 {
        (self.price_per_hit * 100.0).round() as u64
    }

    /// Integer-cent cost of `hits` HITs at `redundancy` assignments each.
    pub fn hits_cost_cents(&self, hits: usize, redundancy: usize) -> u64 {
        hits as u64 * self.price_cents() * redundancy as u64
    }
}

/// A shared HIT: one published HIT whose slots are filled by tasks from
/// several queries. `slots` records, in packing order, how many of the
/// HIT's task slots each query occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedHit {
    /// Position in the publish order.
    pub index: usize,
    /// `(query id, tasks contributed)` pairs, in packing order.
    pub slots: Vec<(u64, usize)>,
}

impl SharedHit {
    /// Total task slots occupied in this HIT.
    pub fn task_count(&self) -> usize {
        self.slots.iter().map(|(_, n)| n).sum()
    }
}

/// Pack per-query task contributions into shared HITs.
///
/// Contributions are concatenated in the given order (callers pass them in
/// query-id order for determinism) and chunked into HITs of
/// `cfg.tasks_per_hit`; a HIT boundary may fall inside a query's batch, and
/// one HIT may carry tasks from several queries. The last HIT may be short.
pub fn pack_shared(contributions: &[(u64, usize)], cfg: HitConfig) -> Vec<SharedHit> {
    assert!(cfg.tasks_per_hit > 0, "tasks_per_hit must be positive");
    let mut hits: Vec<SharedHit> = Vec::new();
    let mut open: Vec<(u64, usize)> = Vec::new();
    let mut room = cfg.tasks_per_hit;
    for &(query, mut remaining) in contributions {
        while remaining > 0 {
            let take = remaining.min(room);
            open.push((query, take));
            remaining -= take;
            room -= take;
            if room == 0 {
                hits.push(SharedHit { index: hits.len(), slots: std::mem::take(&mut open) });
                room = cfg.tasks_per_hit;
            }
        }
    }
    if !open.is_empty() {
        hits.push(SharedHit { index: hits.len(), slots: open });
    }
    hits
}

/// Attribute the integer-cent cost of a round's shared HITs back to the
/// contributing queries.
///
/// Each HIT costs `price_cents() * redundancy` regardless of how full it
/// is; within a HIT the cost is split across its slot queries proportionally
/// to tasks contributed, using largest-remainder rounding (ties broken by
/// slot order, i.e. query-id order for sorted input). Per-HIT shares are
/// integers that sum exactly to the HIT's cost, so the returned per-query
/// totals sum exactly to the platform spend `hits.len() * price * redundancy`
/// — the conservation property `cdb-obsv` checks.
///
/// Returns `(query id, attributed cents)` pairs aggregated per query, in
/// first-contribution order.
pub fn attribute_shared_cents(
    hits: &[SharedHit],
    cfg: HitConfig,
    redundancy: usize,
) -> Vec<(u64, u64)> {
    let hit_cents = cfg.price_cents() * redundancy as u64;
    let mut order: Vec<u64> = Vec::new();
    let mut totals: Vec<u64> = Vec::new();
    for hit in hits {
        let occupied = hit.task_count() as u64;
        debug_assert!(occupied > 0, "packed HITs are never empty");
        // Integer floor shares first, then hand out the remainder cents to
        // the slots with the largest fractional parts (largest remainder).
        let mut shares: Vec<(usize, u64, u64)> = hit
            .slots
            .iter()
            .enumerate()
            .map(|(slot, &(_, n))| {
                let raw = hit_cents * n as u64;
                (slot, raw / occupied, raw % occupied)
            })
            .collect();
        let leftover = hit_cents - shares.iter().map(|&(_, floor, _)| floor).sum::<u64>();
        // Stable sort: ties in remainder keep slot (packing/query-id) order.
        shares.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        for (i, share) in shares.iter_mut().enumerate() {
            if (i as u64) < leftover {
                share.1 += 1;
            }
        }
        shares.sort_by_key(|&(slot, _, _)| slot);
        for (slot, cents, _) in shares {
            let query = hit.slots[slot].0;
            match order.iter().position(|&q| q == query) {
                Some(i) => totals[i] += cents,
                None => {
                    order.push(query);
                    totals.push(cents);
                }
            }
        }
    }
    order.into_iter().zip(totals).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<TaskId> {
        (0..n).map(TaskId).collect()
    }

    #[test]
    fn packs_into_full_and_partial_hits() {
        let hits = pack_hits(&ids(23), HitConfig::default());
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].tasks.len(), 10);
        assert_eq!(hits[2].tasks.len(), 3);
        assert_eq!(hits[1].index, 1);
    }

    #[test]
    fn empty_task_list_packs_to_no_hits() {
        assert!(pack_hits(&[], HitConfig::default()).is_empty());
    }

    #[test]
    fn cost_follows_paper_pricing() {
        let cfg = HitConfig::default();
        // 23 tasks -> 3 HITs -> $0.3 per assignment; 5 workers -> $1.5.
        assert!((cfg.cost(23, 5) - 1.5).abs() < 1e-12);
        assert_eq!(cfg.cost(0, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "tasks_per_hit")]
    fn zero_sized_hits_rejected() {
        pack_hits(&ids(3), HitConfig { tasks_per_hit: 0, price_per_hit: 0.1 });
    }

    #[test]
    fn price_cents_rounds_once_at_the_boundary() {
        assert_eq!(HitConfig::default().price_cents(), 10);
        // 0.1 is not exactly representable in f64; round-to-nearest at the
        // boundary still yields 10 cents, and never 9 or 11.
        let cfg = HitConfig { tasks_per_hit: 10, price_per_hit: 0.1f64 };
        assert_eq!(cfg.hits_cost_cents(3, 5), 150);
    }

    #[test]
    fn shared_packing_crosses_query_boundaries() {
        let cfg = HitConfig::default();
        // 7 + 6 + 10 tasks -> 23 slots -> 3 HITs; HIT 0 carries q0+q1,
        // HIT 1 carries q1+q2, HIT 2 is a 3-slot partial of q2.
        let hits = pack_shared(&[(0, 7), (1, 6), (2, 10)], cfg);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].slots, vec![(0, 7), (1, 3)]);
        assert_eq!(hits[1].slots, vec![(1, 3), (2, 7)]);
        assert_eq!(hits[2].slots, vec![(2, 3)]);
        assert_eq!(hits.iter().map(SharedHit::task_count).sum::<usize>(), 23);
    }

    #[test]
    fn shared_packing_skips_empty_contributions() {
        let hits = pack_shared(&[(0, 0), (1, 4), (2, 0)], HitConfig::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].slots, vec![(1, 4)]);
        assert!(pack_shared(&[], HitConfig::default()).is_empty());
    }

    #[test]
    fn attribution_conserves_cents_on_partial_shared_hits() {
        let cfg = HitConfig::default();
        // One HIT shared 7/3: 10¢ splits 7¢/3¢ exactly.
        let hits = pack_shared(&[(0, 7), (1, 3)], cfg);
        assert_eq!(attribute_shared_cents(&hits, cfg, 1), vec![(0, 7), (1, 3)]);
        // Thirds of a 10¢ HIT don't divide evenly: floor shares are 3/3/3
        // and the leftover cent goes to the first slot (largest remainder
        // tie broken by packing order).
        let hits = pack_shared(&[(0, 1), (1, 1), (2, 1)], cfg);
        let split = attribute_shared_cents(&hits, cfg, 1);
        assert_eq!(split.iter().map(|&(_, c)| c).sum::<u64>(), 10);
        assert_eq!(split, vec![(0, 4), (1, 3), (2, 3)]);
    }

    #[test]
    fn attribution_aggregates_across_hits_per_query() {
        let cfg = HitConfig::default();
        let contribs = [(7u64, 12usize), (9, 8), (11, 5)];
        let hits = pack_shared(&contribs, cfg);
        let split = attribute_shared_cents(&hits, cfg, 3);
        let platform = cfg.hits_cost_cents(hits.len(), 3);
        assert_eq!(split.iter().map(|&(_, c)| c).sum::<u64>(), platform);
        assert_eq!(split.len(), 3, "one entry per contributing query");
        assert_eq!(split[0].0, 7, "first-contribution order preserved");
    }

    mod conservation {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The bugfix invariant: over arbitrary batch splits, per-query
            /// attributed cents sum *exactly* to the platform's integer-cent
            /// spend — no cent dropped or double-counted at a partial
            /// shared-HIT boundary.
            #[test]
            fn attributed_cents_sum_to_platform_cents(
                sizes in prop::collection::vec(0usize..37, 1..12),
                tasks_per_hit in 1usize..25,
                price in 0.01f64..0.50,
                redundancy in 1usize..6,
            ) {
                let cfg = HitConfig { tasks_per_hit, price_per_hit: price };
                let contribs: Vec<(u64, usize)> =
                    sizes.iter().enumerate().map(|(q, &n)| (q as u64, n)).collect();
                let hits = pack_shared(&contribs, cfg);
                let total_tasks: usize = sizes.iter().sum();
                prop_assert_eq!(
                    hits.iter().map(SharedHit::task_count).sum::<usize>(),
                    total_tasks
                );
                prop_assert_eq!(hits.len(), total_tasks.div_ceil(tasks_per_hit));
                let split = attribute_shared_cents(&hits, cfg, redundancy);
                let platform = cfg.hits_cost_cents(hits.len(), redundancy);
                prop_assert_eq!(
                    split.iter().map(|&(_, c)| c).sum::<u64>(),
                    platform,
                    "attribution must conserve platform cents exactly"
                );
                // Only queries that contributed tasks are billed.
                for &(q, cents) in &split {
                    prop_assert!(sizes[q as usize] > 0 || cents == 0);
                }
            }
        }
    }
}
