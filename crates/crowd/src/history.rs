//! Worker history (§2.1 MetaData: "We maintain worker's quality in the
//! history and the current task").
//!
//! Estimated worker qualities survive across queries: when the same
//! worker returns for a later query, truth inference starts from their
//! historical quality instead of the cold-start default, and requesters
//! can ban workers whose history is poor.

use std::collections::HashMap;

use crate::WorkerId;

/// One worker's running record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerRecord {
    /// Smoothed quality estimate in `[0, 1]`.
    pub quality: f64,
    /// Total answers contributed across all queries.
    pub answers: usize,
    /// Number of queries the worker participated in.
    pub queries: usize,
}

/// A persistent store of worker-quality history.
#[derive(Debug, Clone, Default)]
pub struct WorkerHistory {
    records: HashMap<WorkerId, WorkerRecord>,
    /// Cold-start quality for unseen workers (paper default: 0.7).
    default_quality: f64,
}

impl WorkerHistory {
    /// Empty history with the paper's 0.7 cold-start prior.
    pub fn new() -> Self {
        WorkerHistory { records: HashMap::new(), default_quality: 0.7 }
    }

    /// Empty history with a custom cold-start prior.
    pub fn with_default_quality(default_quality: f64) -> Self {
        WorkerHistory { records: HashMap::new(), default_quality: default_quality.clamp(0.0, 1.0) }
    }

    /// Number of workers on record.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no worker has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Quality prior for a worker: their history, or the cold-start
    /// default.
    pub fn quality(&self, w: WorkerId) -> f64 {
        self.records.get(&w).map(|r| r.quality).unwrap_or(self.default_quality)
    }

    /// The full record, if any.
    pub fn record(&self, w: WorkerId) -> Option<&WorkerRecord> {
        self.records.get(&w)
    }

    /// Fold one query's estimated qualities into the history. The running
    /// quality is an answer-count-weighted average of the old estimate and
    /// the new one, so prolific workers' records are stable while new
    /// workers converge quickly.
    pub fn update(
        &mut self,
        estimates: &HashMap<WorkerId, f64>,
        answers_per_worker: &HashMap<WorkerId, usize>,
    ) {
        for (&w, &q) in estimates {
            let new_answers = answers_per_worker.get(&w).copied().unwrap_or(1).max(1);
            let entry = self.records.entry(w).or_insert(WorkerRecord {
                quality: self.default_quality,
                answers: 0,
                queries: 0,
            });
            let total = entry.answers + new_answers;
            entry.quality =
                (entry.quality * entry.answers as f64 + q * new_answers as f64) / total as f64;
            entry.answers = total;
            entry.queries += 1;
        }
    }

    /// Seed map for truth inference: every known worker's prior.
    pub fn priors(&self) -> HashMap<WorkerId, f64> {
        self.records.iter().map(|(&w, r)| (w, r.quality)).collect()
    }

    /// Workers whose historical quality is below `threshold` — candidates
    /// for exclusion from future assignment.
    pub fn blocklist(&self, threshold: f64) -> Vec<WorkerId> {
        let mut out: Vec<WorkerId> =
            self.records.iter().filter(|(_, r)| r.quality < threshold).map(|(&w, _)| w).collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(i: u32) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn cold_start_uses_default() {
        let h = WorkerHistory::new();
        assert_eq!(h.quality(wid(1)), 0.7);
        assert!(h.is_empty());
    }

    #[test]
    fn update_folds_estimates() {
        let mut h = WorkerHistory::new();
        let mut est = HashMap::new();
        est.insert(wid(1), 0.9);
        let mut cnt = HashMap::new();
        cnt.insert(wid(1), 10);
        h.update(&est, &cnt);
        assert_eq!(h.quality(wid(1)), 0.9);
        assert_eq!(h.record(wid(1)).unwrap().answers, 10);
        assert_eq!(h.record(wid(1)).unwrap().queries, 1);
    }

    #[test]
    fn weighted_average_across_queries() {
        let mut h = WorkerHistory::new();
        let mut est = HashMap::new();
        est.insert(wid(1), 1.0);
        let mut cnt = HashMap::new();
        cnt.insert(wid(1), 10);
        h.update(&est, &cnt);
        est.insert(wid(1), 0.5);
        cnt.insert(wid(1), 10);
        h.update(&est, &cnt);
        assert!((h.quality(wid(1)) - 0.75).abs() < 1e-12);
        assert_eq!(h.record(wid(1)).unwrap().queries, 2);
    }

    #[test]
    fn prolific_workers_are_stable() {
        let mut h = WorkerHistory::new();
        let mut est = HashMap::new();
        est.insert(wid(1), 0.9);
        let mut cnt = HashMap::new();
        cnt.insert(wid(1), 1000);
        h.update(&est, &cnt);
        // One noisy query barely moves the estimate.
        est.insert(wid(1), 0.2);
        cnt.insert(wid(1), 5);
        h.update(&est, &cnt);
        assert!(h.quality(wid(1)) > 0.88);
    }

    #[test]
    fn blocklist_flags_bad_workers() {
        let mut h = WorkerHistory::new();
        let mut est = HashMap::new();
        est.insert(wid(1), 0.95);
        est.insert(wid(2), 0.4);
        let mut cnt = HashMap::new();
        cnt.insert(wid(1), 5);
        cnt.insert(wid(2), 5);
        h.update(&est, &cnt);
        assert_eq!(h.blocklist(0.6), vec![wid(2)]);
        assert!(h.blocklist(0.1).is_empty());
    }

    #[test]
    fn priors_expose_all_records() {
        let mut h = WorkerHistory::with_default_quality(0.5);
        let mut est = HashMap::new();
        est.insert(wid(3), 0.8);
        h.update(&est, &HashMap::new());
        let p = h.priors();
        assert_eq!(p.len(), 1);
        assert!((p[&wid(3)] - 0.8).abs() < 1e-12);
        assert_eq!(h.quality(wid(9)), 0.5);
    }
}
