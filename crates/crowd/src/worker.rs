//! Worker model: latent accuracy drawn from a Gaussian.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Opaque worker identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A simulated worker with a latent accuracy: the probability of answering
/// a task correctly. This matches the paper's §6.2 setup where workers are
/// "generated from the same Gaussian distribution N(0.8, 0.01)".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Platform-scoped id.
    pub id: WorkerId,
    /// Latent probability of a correct answer, clamped to `[0.05, 1.0]`.
    pub accuracy: f64,
}

/// A pool of simulated workers.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Build a pool of `n` workers whose accuracies are drawn from
    /// `N(mean, stddev^2)` using the supplied RNG, clamped into
    /// `[0.05, 1.0]` so a worker is never an adversarial oracle.
    pub fn gaussian(n: usize, mean: f64, stddev: f64, rng: &mut impl Rng) -> Self {
        let workers = (0..n)
            .map(|i| {
                // Box-Muller transform: rand 0.8 has no Normal distribution
                // without rand_distr, which is outside the approved set.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let acc = (mean + stddev * z).clamp(0.05, 1.0);
                Worker { id: WorkerId(i as u32), accuracy: acc }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Build a pool with exactly the given accuracies.
    pub fn with_accuracies(accuracies: &[f64]) -> Self {
        let workers = accuracies
            .iter()
            .enumerate()
            .map(|(i, &a)| Worker { id: WorkerId(i as u32), accuracy: a.clamp(0.0, 1.0) })
            .collect();
        WorkerPool { workers }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// All workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Look up one worker.
    pub fn worker(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.get(id.0 as usize)
    }

    /// Sample `k` distinct workers uniformly (for redundancy-k assignment
    /// without requester-side control, i.e. the CrowdFlower model).
    ///
    /// # Panics
    /// Panics if `k > len()`.
    pub fn sample_distinct(&self, k: usize, rng: &mut impl Rng) -> Vec<Worker> {
        assert!(k <= self.workers.len(), "cannot sample {k} from {}", self.workers.len());
        // Partial Fisher-Yates over indices.
        let mut idx: Vec<usize> = (0..self.workers.len()).collect();
        for i in 0..k {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..k].iter().map(|&i| self.workers[i]).collect()
    }

    /// Mean latent accuracy of the pool.
    pub fn mean_accuracy(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.accuracy).sum::<f64>() / self.workers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_pool_concentrates_near_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let pool = WorkerPool::gaussian(2000, 0.8, 0.1, &mut rng);
        let mean = pool.mean_accuracy();
        assert!((mean - 0.8).abs() < 0.02, "mean = {mean}");
        assert!(pool.workers().iter().all(|w| (0.05..=1.0).contains(&w.accuracy)));
    }

    #[test]
    fn gaussian_pool_has_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let pool = WorkerPool::gaussian(500, 0.8, 0.1, &mut rng);
        let var = pool.workers().iter().map(|w| (w.accuracy - 0.8).powi(2)).sum::<f64>() / 500.0;
        assert!(var > 0.001, "variance = {var}");
    }

    #[test]
    fn with_accuracies_clamps() {
        let pool = WorkerPool::with_accuracies(&[1.5, -0.2, 0.7]);
        assert_eq!(pool.worker(WorkerId(0)).unwrap().accuracy, 1.0);
        assert_eq!(pool.worker(WorkerId(1)).unwrap().accuracy, 0.0);
        assert_eq!(pool.worker(WorkerId(2)).unwrap().accuracy, 0.7);
    }

    #[test]
    fn sample_distinct_yields_unique_workers() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = WorkerPool::gaussian(10, 0.8, 0.1, &mut rng);
        let sample = pool.sample_distinct(5, &mut rng);
        let mut ids: Vec<u32> = sample.iter().map(|w| w.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_pool_panics() {
        let pool = WorkerPool::with_accuracies(&[0.8]);
        let mut rng = StdRng::seed_from_u64(1);
        pool.sample_distinct(2, &mut rng);
    }

    #[test]
    fn empty_pool() {
        let pool = WorkerPool::with_accuracies(&[]);
        assert!(pool.is_empty());
        assert_eq!(pool.mean_accuracy(), 0.0);
    }
}
