//! Simulated crowdsourcing platform substrate for CDB.
//!
//! The paper deploys CDB on AMT, CrowdFlower and ChinaCrowd; this crate is
//! the faithful simulation substitute (see DESIGN.md). It models:
//!
//! * the four task UIs of CDB's *Crowd UI Designer* — single-choice,
//!   multiple-choice, fill-in-the-blank and collection tasks;
//! * workers with latent accuracies drawn from a Gaussian `N(q, 0.01)`
//!   (exactly the worker model of the paper's simulated experiments, §6.2);
//! * HIT packing (the real experiments pack 10 tasks per \$0.1 HIT, §6.3);
//! * cross-market deployment (AMT's developer model supports server-side
//!   online task assignment; CrowdFlower does not — §2.1);
//! * the metadata kept by CDB: tasks, workers, and per-assignment answers;
//! * the autocompletion store used by COLLECT to control duplicates.
//!
//! Determinism: every stochastic component takes a seeded RNG, so
//! experiments are reproducible.

mod autocomplete;
mod history;
mod hit;
mod latency;
mod log;
mod market_deploy;
mod pending;
mod platform;
mod stream;
mod task;
mod worker;

pub use autocomplete::AutocompleteStore;
pub use history::{WorkerHistory, WorkerRecord};
pub use hit::{attribute_shared_cents, pack_hits, pack_shared, Hit, HitConfig, SharedHit};
pub use latency::{LatencyModel, SimTime};
pub use log::{Assignment, AssignmentLog};
pub use market_deploy::{CrossMarketDeployer, MarketSlot};
pub use pending::{OpenRound, PendingAssignment};
pub use platform::{simulate_answer_with, CrowdPlatform, Market, SimulatedPlatform, TaskAssigner};
pub use stream::{stream_key, stream_rng};
pub use task::{join_difficulty, Answer, Task, TaskId, TaskKind};
pub use worker::{Worker, WorkerId, WorkerPool};
