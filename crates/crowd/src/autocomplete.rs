//! Autocompletion store for COLLECT tasks.
//!
//! CDB controls duplicates in crowd-collected data with an autocompletion
//! interface (§3, §5.3.1): as a worker types, values already contributed by
//! other workers are suggested, so the worker either picks the canonical
//! representation or learns how existing values are written. This is the
//! mechanism behind Figure 17(a), where CDB needs ~5x fewer questions than
//! Deco to collect the same number of distinct tuples.

use std::collections::BTreeMap;

use cdb_similarity::{SimilarityFn, SimilarityMeasure};

/// The set of values contributed so far, with prefix lookup and
/// similarity-based canonicalization.
#[derive(Debug, Clone, Default)]
pub struct AutocompleteStore {
    /// Canonical value -> number of times contributed.
    values: BTreeMap<String, usize>,
}

impl AutocompleteStore {
    /// Empty store.
    pub fn new() -> Self {
        AutocompleteStore::default()
    }

    /// Number of distinct canonical values collected.
    pub fn distinct_count(&self) -> usize {
        self.values.len()
    }

    /// Total contributions (including duplicates).
    pub fn contribution_count(&self) -> usize {
        self.values.values().sum()
    }

    /// Values starting with `prefix` (case-insensitive), in sorted order —
    /// what the UI shows as the worker types.
    pub fn suggest(&self, prefix: &str, limit: usize) -> Vec<&str> {
        let p = prefix.to_lowercase();
        self.values
            .keys()
            .filter(|v| v.to_lowercase().starts_with(&p))
            .take(limit)
            .map(String::as_str)
            .collect()
    }

    /// Record a contribution. If an existing value is similar enough
    /// (`sim >= dedup_threshold` under `f`), the contribution is counted
    /// against that canonical value and `false` ("not new") is returned;
    /// otherwise the value is inserted as a new canonical entry.
    pub fn contribute(&mut self, value: &str, f: SimilarityFn, dedup_threshold: f64) -> bool {
        // Exact match fast path.
        if let Some(count) = self.values.get_mut(value) {
            *count += 1;
            return false;
        }
        // Similarity-based canonicalization (crowd/machine ER stand-in).
        let canonical = self
            .values
            .keys()
            .map(|v| (v.clone(), f.similarity(v, value)))
            .filter(|(_, s)| *s >= dedup_threshold)
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(v, _)| v);
        match canonical {
            Some(v) => {
                *self.values.get_mut(&v).expect("key exists") += 1;
                false
            }
            None => {
                self.values.insert(value.to_string(), 1);
                true
            }
        }
    }

    /// All canonical values.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribute_counts_new_and_duplicate() {
        let mut s = AutocompleteStore::new();
        let f = SimilarityFn::default();
        assert!(s.contribute("MIT", f, 0.8));
        assert!(!s.contribute("MIT", f, 0.8));
        assert_eq!(s.distinct_count(), 1);
        assert_eq!(s.contribution_count(), 2);
    }

    #[test]
    fn near_duplicates_are_canonicalized() {
        let mut s = AutocompleteStore::new();
        let f = SimilarityFn::QGramJaccard { q: 2 };
        assert!(s.contribute("University of California", f, 0.6));
        // A dirty variant folds into the existing canonical value.
        assert!(!s.contribute("Universty of California", f, 0.6));
        assert_eq!(s.distinct_count(), 1);
    }

    #[test]
    fn distinct_values_stay_distinct() {
        let mut s = AutocompleteStore::new();
        let f = SimilarityFn::QGramJaccard { q: 2 };
        assert!(s.contribute("MIT", f, 0.6));
        assert!(s.contribute("Stanford University", f, 0.6));
        assert_eq!(s.distinct_count(), 2);
    }

    #[test]
    fn suggestions_filter_by_prefix() {
        let mut s = AutocompleteStore::new();
        let f = SimilarityFn::default();
        s.contribute("MIT", f, 0.9);
        s.contribute("Michigan", f, 0.9);
        s.contribute("Stanford", f, 0.9);
        assert_eq!(s.suggest("mi", 10), vec!["MIT", "Michigan"]);
        assert_eq!(s.suggest("mi", 1).len(), 1);
        assert!(s.suggest("zz", 10).is_empty());
    }

    #[test]
    fn empty_store() {
        let s = AutocompleteStore::new();
        assert_eq!(s.distinct_count(), 0);
        assert!(s.suggest("a", 5).is_empty());
    }
}
