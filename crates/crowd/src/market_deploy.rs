//! Cross-market HIT deployment (§2.2, Figure 3's last row).
//!
//! Prior systems publish to a single market and inherit its bias; CDB
//! "has the flexibility of cross-market HITs deployment by simultaneously
//! publishing HITs to AMT, ChinaCrowd, CrowdFlower, etc.". The deployer
//! splits a batch of tasks across several (simulated) platforms in
//! proportion to configured shares, runs each slice as one round on its
//! platform, and merges the assignment streams.

use crate::{Assignment, SimulatedPlatform, Task};

/// One market with a traffic share.
#[derive(Debug)]
pub struct MarketSlot {
    /// The platform (already configured with its own worker pool/seed).
    pub platform: SimulatedPlatform,
    /// Relative share of tasks routed to this market (≥ 0; shares are
    /// normalized over the deployer).
    pub share: f64,
}

/// Publishes batches across multiple markets at once.
#[derive(Debug)]
pub struct CrossMarketDeployer {
    slots: Vec<MarketSlot>,
}

impl CrossMarketDeployer {
    /// Create a deployer over one or more markets.
    ///
    /// # Panics
    /// Panics if no slot is given or all shares are zero.
    pub fn new(slots: Vec<MarketSlot>) -> Self {
        assert!(!slots.is_empty(), "need at least one market");
        assert!(slots.iter().any(|s| s.share > 0.0), "need a positive share");
        CrossMarketDeployer { slots }
    }

    /// Number of markets.
    pub fn market_count(&self) -> usize {
        self.slots.len()
    }

    /// Access a slot's platform (e.g. to read its log).
    pub fn platform(&self, idx: usize) -> &SimulatedPlatform {
        &self.slots[idx].platform
    }

    /// Attach one trace to every market: each slice published then emits
    /// its own `crowd.market` event, so the per-market split of a
    /// cross-deployed batch is visible in the event stream.
    pub fn set_trace(&mut self, trace: cdb_obsv::Trace) {
        for slot in &mut self.slots {
            slot.platform.set_trace(trace.clone());
        }
    }

    /// Split `tasks` across the markets proportionally to their shares
    /// (largest-remainder apportionment over contiguous chunks) and ask
    /// each slice as one round with `redundancy` answers per task.
    /// Returns all assignments merged; the round counts as one logical
    /// round (the markets run in parallel).
    pub fn ask_round(&mut self, tasks: &[Task], redundancy: usize) -> Vec<Assignment> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let total_share: f64 = self.slots.iter().map(|s| s.share).sum();
        let n = tasks.len();
        // Largest-remainder apportionment.
        let mut counts: Vec<usize> = Vec::with_capacity(self.slots.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(self.slots.len());
        let mut assigned = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            let exact = n as f64 * s.share / total_share;
            let floor = exact.floor() as usize;
            counts.push(floor);
            remainders.push((i, exact - exact.floor()));
            assigned += floor;
        }
        remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(i, _) in remainders.iter().take(n - assigned) {
            counts[i] += 1;
        }
        // Publish contiguous slices.
        let mut out = Vec::new();
        let mut offset = 0usize;
        for (slot, &count) in self.slots.iter_mut().zip(&counts) {
            if count == 0 {
                continue;
            }
            let slice = &tasks[offset..offset + count];
            offset += count;
            out.extend(slot.platform.ask_round(slice, redundancy));
        }
        debug_assert_eq!(offset, n);
        out
    }

    /// The maximum round count over the markets — the logical latency of
    /// the deployment (markets run in parallel).
    pub fn rounds(&self) -> usize {
        self.slots.iter().map(|s| s.platform.rounds()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Market, TaskId, WorkerPool};

    fn slot(market: Market, share: f64, acc: f64, seed: u64) -> MarketSlot {
        MarketSlot {
            platform: SimulatedPlatform::new(market, WorkerPool::with_accuracies(&[acc; 10]), seed),
            share,
        }
    }

    fn tasks(n: u64) -> Vec<Task> {
        (0..n).map(|i| Task::join_check(TaskId(i), "a", "b", true)).collect()
    }

    #[test]
    fn splits_tasks_proportionally() {
        let mut d = CrossMarketDeployer::new(vec![
            slot(Market::Amt, 2.0, 1.0, 1),
            slot(Market::CrowdFlower, 1.0, 1.0, 2),
            slot(Market::ChinaCrowd, 1.0, 1.0, 3),
        ]);
        let out = d.ask_round(&tasks(20), 3);
        assert_eq!(out.len(), 60);
        assert_eq!(d.platform(0).log().task_count(), 10);
        assert_eq!(d.platform(1).log().task_count(), 5);
        assert_eq!(d.platform(2).log().task_count(), 5);
    }

    #[test]
    fn apportionment_covers_every_task() {
        let mut d = CrossMarketDeployer::new(vec![
            slot(Market::Amt, 1.0, 1.0, 1),
            slot(Market::CrowdFlower, 1.0, 1.0, 2),
            slot(Market::ChinaCrowd, 1.0, 1.0, 3),
        ]);
        // 7 tasks across 3 equal shares: 3 + 2 + 2.
        let out = d.ask_round(&tasks(7), 1);
        assert_eq!(out.len(), 7);
        let covered: usize = (0..3).map(|i| d.platform(i).log().task_count()).sum();
        assert_eq!(covered, 7);
    }

    #[test]
    fn logical_rounds_take_the_max() {
        let mut d = CrossMarketDeployer::new(vec![
            slot(Market::Amt, 1.0, 1.0, 1),
            slot(Market::CrowdFlower, 1.0, 1.0, 2),
        ]);
        d.ask_round(&tasks(4), 1);
        d.ask_round(&tasks(4), 1);
        assert_eq!(d.rounds(), 2);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut d = CrossMarketDeployer::new(vec![slot(Market::Amt, 1.0, 1.0, 1)]);
        assert!(d.ask_round(&[], 5).is_empty());
        assert_eq!(d.rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one market")]
    fn empty_deployer_rejected() {
        CrossMarketDeployer::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive share")]
    fn zero_shares_rejected() {
        CrossMarketDeployer::new(vec![slot(Market::Amt, 0.0, 1.0, 1)]);
    }

    #[test]
    fn traced_deployment_reports_per_market_split() {
        use cdb_obsv::{attr::names, Ring, Trace};
        use std::sync::Arc;
        let ring = Arc::new(Ring::with_capacity(16));
        let mut d = CrossMarketDeployer::new(vec![
            slot(Market::Amt, 3.0, 1.0, 1),
            slot(Market::ChinaCrowd, 1.0, 1.0, 2),
        ]);
        d.set_trace(Trace::collector(ring.clone()));
        d.ask_round(&tasks(8), 2);
        let evs = ring.drain();
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.name == names::MARKET_ROUTE));
        let amt = evs.iter().find(|e| e.get("market").unwrap().as_str() == Some("amt")).unwrap();
        assert_eq!(amt.get_u64("n"), Some(6));
        let cc =
            evs.iter().find(|e| e.get("market").unwrap().as_str() == Some("chinacrowd")).unwrap();
        assert_eq!(cc.get_u64("n"), Some(2));
        assert_eq!(cc.get_u64("cents"), Some(3));
    }

    #[test]
    fn zero_share_market_receives_nothing() {
        let mut d = CrossMarketDeployer::new(vec![
            slot(Market::Amt, 1.0, 1.0, 1),
            slot(Market::CrowdFlower, 0.0, 1.0, 2),
        ]);
        d.ask_round(&tasks(5), 1);
        assert_eq!(d.platform(0).log().task_count(), 5);
        assert_eq!(d.platform(1).log().task_count(), 0);
    }
}
