//! Deterministic keyed RNG streams.
//!
//! The concurrent runtime (`cdb-runtime`) must produce byte-identical
//! results regardless of thread count. That rules out drawing randomness
//! from a shared sequential RNG, whose stream would depend on the order in
//! which threads reach it. Instead, every stochastic decision is drawn
//! from a *stream* keyed by what the decision is about — e.g.
//! `(seed, query, round, task, attempt)` — so the value is a pure function
//! of the key, not of scheduling.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a fast, well-mixing 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Collapse `(root, parts...)` into one well-mixed 64-bit stream key.
pub fn stream_key(root: u64, parts: &[u64]) -> u64 {
    let mut h = mix64(root ^ 0x517c_c1b7_2722_0a95);
    for &p in parts {
        h = mix64(h ^ mix64(p));
    }
    h
}

/// A fresh RNG for the stream identified by `(root, parts...)`. Equal keys
/// give equal streams; differing in any part gives an unrelated stream.
pub fn stream_rng(root: u64, parts: &[u64]) -> StdRng {
    StdRng::seed_from_u64(stream_key(root, parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn equal_keys_equal_streams() {
        let mut a = stream_rng(7, &[1, 2, 3]);
        let mut b = stream_rng(7, &[1, 2, 3]);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn any_part_changes_the_stream() {
        let base: Vec<u64> = (0..16).map(|_| 0).collect();
        let mut streams = Vec::new();
        for (i, _) in base.iter().enumerate() {
            let mut parts = base.clone();
            parts[i] = 1;
            streams.push(stream_rng(7, &parts).gen::<u64>());
        }
        streams.push(stream_rng(7, &base).gen::<u64>());
        streams.push(stream_rng(8, &base).gen::<u64>());
        let distinct: std::collections::BTreeSet<u64> = streams.iter().copied().collect();
        assert_eq!(distinct.len(), streams.len(), "streams should not collide");
    }

    #[test]
    fn order_of_parts_matters() {
        assert_ne!(stream_key(1, &[2, 3]), stream_key(1, &[3, 2]));
        assert_ne!(stream_key(1, &[0]), stream_key(1, &[0, 0]));
    }
}
