//! The simulated crowdsourcing market.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::latency::{LatencyModel, SimTime};
use crate::pending::{OpenRound, PendingAssignment};
use crate::{
    Answer, Assignment, AssignmentLog, Task, TaskId, TaskKind, Worker, WorkerId, WorkerPool,
};

/// The crowdsourcing markets CDB deploys on (§2.1). The distinction that
/// matters for optimization: AMT's developer model lets the requester's
/// server control *online task assignment*; CrowdFlower and ChinaCrowd do
/// not, so tasks there are assigned to random workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Market {
    /// Amazon Mechanical Turk (supports online assignment).
    Amt,
    /// CrowdFlower (no requester-side assignment control).
    CrowdFlower,
    /// ChinaCrowd (no requester-side assignment control).
    ChinaCrowd,
}

impl Market {
    /// True when the requester can choose which tasks each arriving worker
    /// receives — the prerequisite for CDB+'s task-assignment strategy.
    pub fn supports_online_assignment(self) -> bool {
        matches!(self, Market::Amt)
    }

    /// Price of one assignment (HIT answer) on this market, in cents —
    /// the unit the observability layer multiplies by dispatch counts to
    /// attribute monetary cost. The paper's experiments pay $0.05 per
    /// AMT task (§6.1); the other markets are modelled slightly cheaper.
    pub fn task_price_cents(self) -> u64 {
        match self {
            Market::Amt => 5,
            Market::CrowdFlower => 4,
            Market::ChinaCrowd => 3,
        }
    }

    /// Stable lowercase market name for metric labels and trace args.
    pub fn name(self) -> &'static str {
        match self {
            Market::Amt => "amt",
            Market::CrowdFlower => "crowdflower",
            Market::ChinaCrowd => "chinacrowd",
        }
    }
}

/// A deterministic, seeded simulation of a crowdsourcing platform.
///
/// Workers answer according to their latent accuracy: a single-choice task
/// is answered correctly with probability `accuracy`, otherwise one of the
/// wrong choices is picked uniformly — the standard worker model the paper
/// adopts for its simulated study (§6.2).
#[derive(Debug)]
pub struct SimulatedPlatform {
    market: Market,
    pool: WorkerPool,
    rng: StdRng,
    log: AssignmentLog,
    round: usize,
    trace: cdb_obsv::Trace,
}

impl SimulatedPlatform {
    /// Create a platform over a worker pool with a deterministic seed.
    pub fn new(market: Market, pool: WorkerPool, seed: u64) -> Self {
        SimulatedPlatform {
            market,
            pool,
            rng: StdRng::seed_from_u64(seed),
            log: AssignmentLog::new(),
            round: 0,
            trace: cdb_obsv::Trace::off(),
        }
    }

    /// Attach a trace: each published batch emits a
    /// [`cdb_obsv::attr::names::MARKET_ROUTE`] event tagging the market,
    /// batch size and per-task price.
    pub fn set_trace(&mut self, trace: cdb_obsv::Trace) {
        self.trace = trace;
    }

    /// The attached trace (off by default).
    pub fn trace(&self) -> &cdb_obsv::Trace {
        &self.trace
    }

    fn trace_batch(&self, n: usize, redundancy: usize, at: u64) {
        self.trace.emit(cdb_obsv::Event::instant(
            cdb_obsv::SpanId::ROOT,
            cdb_obsv::attr::names::MARKET_ROUTE,
            at,
            cdb_obsv::kv![
                market => self.market.name(),
                n => n,
                redundancy => redundancy,
                cents => self.market.task_price_cents(),
                round => self.round,
            ],
        ));
    }

    /// Which market this simulates.
    pub fn market(&self) -> Market {
        self.market
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        self.pool_ref()
    }

    fn pool_ref(&self) -> &WorkerPool {
        &self.pool
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// The assignment log (all answers collected so far).
    pub fn log(&self) -> &AssignmentLog {
        &self.log
    }

    /// Publish a batch of tasks as one *round*: each task is answered by
    /// `redundancy` distinct randomly-drawn workers (the no-control market
    /// model). Returns the new assignments, which are also recorded in the
    /// log. A non-empty batch advances the round counter by one — the
    /// paper's latency metric is exactly this number of rounds.
    pub fn ask_round(&mut self, tasks: &[Task], redundancy: usize) -> Vec<Assignment> {
        if tasks.is_empty() {
            return Vec::new();
        }
        self.trace_batch(tasks.len(), redundancy, self.round as u64);
        let mut out = Vec::with_capacity(tasks.len() * redundancy);
        for task in tasks {
            let workers = self.pool.sample_distinct(redundancy.min(self.pool.len()), &mut self.rng);
            for w in workers {
                let answer = self.simulate_answer(w, task);
                let a = Assignment { task: task.id, worker: w.id, answer, round: self.round };
                self.log.record(a.clone());
                out.push(a);
            }
        }
        self.round += 1;
        out
    }

    /// Publish a batch of tasks as one round under AMT's developer model:
    /// workers arrive one at a time and the requester-supplied `assigner`
    /// decides which (up to `batch_size`) of the still-open tasks each
    /// arriving worker receives. The round ends when every task has
    /// `redundancy` answers.
    ///
    /// # Panics
    /// Panics when the market does not support online assignment.
    pub fn ask_round_assigned(
        &mut self,
        tasks: &[Task],
        redundancy: usize,
        batch_size: usize,
        assigner: &mut TaskAssigner,
    ) -> Vec<Assignment> {
        assert!(
            self.market.supports_online_assignment(),
            "{:?} does not support requester-side task assignment",
            self.market
        );
        if tasks.is_empty() {
            return Vec::new();
        }
        self.trace_batch(tasks.len(), redundancy, self.round as u64);
        let mut need: std::collections::BTreeMap<TaskId, usize> =
            tasks.iter().map(|t| (t.id, redundancy)).collect();
        let by_id: std::collections::BTreeMap<TaskId, &Task> =
            tasks.iter().map(|t| (t.id, t)).collect();
        // Track which workers already answered which tasks in this round so
        // no worker answers the same task twice.
        let mut answered: std::collections::HashSet<(WorkerId, TaskId)> =
            std::collections::HashSet::new();
        let mut out = Vec::new();
        // Workers arrive in an endless random stream; bail out if the pool
        // cannot provide the required redundancy.
        let mut idle_arrivals = 0usize;
        while need.values().any(|&n| n > 0) {
            let w = self.pool.workers()[self.rng.gen_range(0..self.pool.len())];
            let open: Vec<&Task> = need
                .iter()
                .filter(|(id, &n)| n > 0 && !answered.contains(&(w.id, **id)))
                .map(|(id, _)| by_id[id])
                .collect();
            if open.is_empty() {
                idle_arrivals += 1;
                assert!(
                    idle_arrivals < 100 * self.pool.len().max(1),
                    "worker pool too small for redundancy {redundancy}"
                );
                continue;
            }
            idle_arrivals = 0;
            let chosen = assigner(&w, &open, &self.log);
            for tid in chosen.into_iter().take(batch_size) {
                let Some(task) = by_id.get(&tid) else { continue };
                if need[&tid] == 0 || answered.contains(&(w.id, tid)) {
                    continue;
                }
                let answer = self.simulate_answer(w, task);
                let a = Assignment { task: tid, worker: w.id, answer, round: self.round };
                self.log.record(a.clone());
                out.push(a);
                answered.insert((w.id, tid));
                *need.get_mut(&tid).expect("task known") -= 1;
            }
        }
        self.round += 1;
        out
    }

    /// Generate one worker's answer to one task according to the latent
    /// accuracy model, drawing from the platform's own RNG.
    pub fn simulate_answer(&mut self, worker: Worker, task: &Task) -> Answer {
        simulate_answer_with(worker, task, &mut self.rng)
    }

    /// Publish a batch *without* blocking for answers: each task goes to
    /// `redundancy` distinct workers and every assignment gets a pre-drawn
    /// answer plus a response-latency sample from `latency`. Nothing is
    /// logged and the round counter does not move — the caller collects
    /// arrivals from the returned [`OpenRound`] as virtual time advances
    /// and calls [`SimulatedPlatform::finish_round`] when done. This is the
    /// answers-as-they-arrive counterpart of [`SimulatedPlatform::ask_round`].
    pub fn publish_round(
        &mut self,
        tasks: &[Task],
        redundancy: usize,
        latency: &LatencyModel,
        deadline_ms: SimTime,
        now: SimTime,
    ) -> OpenRound {
        if !tasks.is_empty() {
            self.trace_batch(tasks.len(), redundancy, now);
        }
        let mut open = OpenRound { round: self.round, pending: Vec::new() };
        for task in tasks {
            let workers = self.pool.sample_distinct(redundancy.min(self.pool.len()), &mut self.rng);
            for w in workers {
                open.pending.push(self.dispatch(w, task, latency, deadline_ms, now, 0));
            }
        }
        open
    }

    /// Dispatch one replacement assignment — the reassignment step after a
    /// worker dropout or an expired per-assignment deadline. On markets
    /// with online assignment the requester picks a worker outside
    /// `exclude`; elsewhere the platform hands the task to a random worker,
    /// excluded or not (the requester has no control). Returns `None` when
    /// online assignment is supported but no eligible worker remains.
    pub fn dispatch_replacement(
        &mut self,
        task: &Task,
        exclude: &[WorkerId],
        latency: &LatencyModel,
        deadline_ms: SimTime,
        now: SimTime,
        attempt: u32,
    ) -> Option<PendingAssignment> {
        let w = if self.market.supports_online_assignment() {
            let eligible: Vec<Worker> =
                self.pool.workers().iter().copied().filter(|w| !exclude.contains(&w.id)).collect();
            if eligible.is_empty() {
                return None;
            }
            eligible[self.rng.gen_range(0..eligible.len())]
        } else {
            self.pool.workers()[self.rng.gen_range(0..self.pool.len())]
        };
        Some(self.dispatch(w, task, latency, deadline_ms, now, attempt))
    }

    fn dispatch(
        &mut self,
        w: Worker,
        task: &Task,
        latency: &LatencyModel,
        deadline_ms: SimTime,
        now: SimTime,
        attempt: u32,
    ) -> PendingAssignment {
        // The answer is pre-drawn at dispatch time so that arrival order
        // (and hence thread scheduling) can never change its value.
        let answer = self.simulate_answer(w, task);
        let arrives_at = Some(now + latency.sample(w.id, &mut self.rng));
        PendingAssignment {
            task: task.id,
            worker: w,
            answer,
            dispatched_at: now,
            arrives_at,
            deadline: now + deadline_ms,
            attempt,
        }
    }

    /// Record the answers collected from a published round and advance the
    /// round counter — the bookkeeping [`SimulatedPlatform::ask_round`]
    /// does synchronously. Advances the counter even when `assignments` is
    /// empty: a published round that lost every answer to faults still
    /// consumed a round of latency.
    pub fn finish_round(&mut self, assignments: &[Assignment]) {
        for a in assignments {
            self.log.record(a.clone());
        }
        self.round += 1;
    }
}

/// Generate one worker's answer to one task under the latent accuracy
/// model, using the supplied RNG — the pure core of
/// [`SimulatedPlatform::simulate_answer`]. Exposed so the concurrent
/// runtime can draw answers from deterministic keyed streams
/// (`crate::stream_rng`) instead of a shared sequential RNG.
pub fn simulate_answer_with(worker: Worker, task: &Task, rng: &mut impl Rng) -> Answer {
    // Difficulty-aware accuracy: easy tasks (difficulty -> 0) are
    // answered correctly almost always, hard tasks at the worker's
    // latent accuracy (the flat model of the paper's simulation).
    let eff = worker.accuracy + (1.0 - worker.accuracy) * (1.0 - task.difficulty) * 0.9;
    match (&task.kind, &task.truth) {
        (TaskKind::SingleChoice { choices, .. }, Some(Answer::Choice(truth))) => {
            if rng.gen::<f64>() < eff || choices.len() <= 1 {
                Answer::Choice(*truth)
            } else {
                // Uniform over the wrong choices.
                let mut c = rng.gen_range(0..choices.len() - 1);
                if c >= *truth {
                    c += 1;
                }
                Answer::Choice(c)
            }
        }
        (TaskKind::MultiChoice { choices, .. }, Some(Answer::Choices(truth))) => {
            // Membership of each choice is reported correctly with
            // probability `accuracy`, independently (the paper
            // decomposes a multi-choice task into ℓ single-choice
            // membership tasks).
            let mut picked = Vec::new();
            for i in 0..choices.len() {
                let in_truth = truth.binary_search(&i).is_ok();
                let correct = rng.gen::<f64>() < eff;
                if in_truth == correct {
                    picked.push(i);
                }
            }
            Answer::Choices(picked)
        }
        (TaskKind::FillInBlank { .. }, Some(Answer::Text(truth)))
        | (TaskKind::Collection { .. }, Some(Answer::Text(truth))) => {
            if rng.gen::<f64>() < eff {
                Answer::Text(truth.clone())
            } else {
                Answer::Text(corrupt(truth, rng))
            }
        }
        // No ground truth: return an arbitrary deterministic answer —
        // the caller is exercising plumbing, not quality.
        (TaskKind::SingleChoice { .. }, _) => Answer::Choice(0),
        (TaskKind::MultiChoice { .. }, _) => Answer::Choices(vec![]),
        (TaskKind::FillInBlank { .. } | TaskKind::Collection { .. }, _) => {
            Answer::Text(String::new())
        }
    }
}

/// The platform interface the query executor runs against. Abstracting it
/// Requester-side online assigner: given the arriving worker, the
/// still-open tasks and the log so far, decide which tasks the worker
/// receives this visit.
pub type TaskAssigner<'a> = dyn FnMut(&Worker, &[&Task], &AssignmentLog) -> Vec<TaskId> + 'a;

/// lets `cdb-core`'s round loop drive either the sequential
/// [`SimulatedPlatform`] or `cdb-runtime`'s concurrent, fault-injecting
/// engine without a dependency cycle between those crates.
pub trait CrowdPlatform {
    /// Which market this platform deploys on.
    fn market(&self) -> Market;

    /// Number of completed rounds.
    fn rounds(&self) -> usize;

    /// The assignment log (all answers collected so far).
    fn log(&self) -> &AssignmentLog;

    /// Publish a batch of tasks as one round with `redundancy` answers per
    /// task, blocking until the round completes.
    fn ask_round(&mut self, tasks: &[Task], redundancy: usize) -> Vec<Assignment>;

    /// Publish a batch as one round under requester-side online task
    /// assignment (AMT's developer model). Implementations must panic when
    /// [`CrowdPlatform::market`] does not support it.
    fn ask_round_assigned(
        &mut self,
        tasks: &[Task],
        redundancy: usize,
        batch_size: usize,
        assigner: &mut TaskAssigner,
    ) -> Vec<Assignment>;
}

impl CrowdPlatform for SimulatedPlatform {
    fn market(&self) -> Market {
        SimulatedPlatform::market(self)
    }

    fn rounds(&self) -> usize {
        SimulatedPlatform::rounds(self)
    }

    fn log(&self) -> &AssignmentLog {
        SimulatedPlatform::log(self)
    }

    fn ask_round(&mut self, tasks: &[Task], redundancy: usize) -> Vec<Assignment> {
        SimulatedPlatform::ask_round(self, tasks, redundancy)
    }

    fn ask_round_assigned(
        &mut self,
        tasks: &[Task],
        redundancy: usize,
        batch_size: usize,
        assigner: &mut TaskAssigner,
    ) -> Vec<Assignment> {
        SimulatedPlatform::ask_round_assigned(self, tasks, redundancy, batch_size, assigner)
    }
}

/// Corrupt a string the way failing workers do: half the time a
/// character-level slip (drop, duplicate or swap — the answer stays
/// recognizable), half the time a completely different answer (the worker
/// did not know and guessed). Guaranteed to differ from the input for
/// inputs of length ≥ 2.
pub(crate) fn corrupt(s: &str, rng: &mut impl Rng) -> String {
    if rng.gen::<f64>() < 0.5 {
        // A wrong guess unrelated to the truth.
        return format!("unknown answer {}", rng.gen_range(0..1000u32));
    }
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return format!("{s}?");
    }
    let mut out = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => {
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        1 => {
            let i = rng.gen_range(0..out.len());
            let c = out[i];
            out.insert(i, c);
        }
        _ => {
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
            if out == chars {
                // Swapped identical characters; force a difference.
                out.remove(i);
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(accs: &[f64], seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(accs), seed)
    }

    fn yes_task(id: u64) -> Task {
        Task::join_check(TaskId(id), "MIT", "M.I.T.", true)
    }

    #[test]
    fn market_assignment_capability() {
        assert!(Market::Amt.supports_online_assignment());
        assert!(!Market::CrowdFlower.supports_online_assignment());
        assert!(!Market::ChinaCrowd.supports_online_assignment());
    }

    #[test]
    fn market_prices_and_names_are_stable() {
        assert_eq!(Market::Amt.task_price_cents(), 5);
        assert_eq!(Market::CrowdFlower.task_price_cents(), 4);
        assert_eq!(Market::ChinaCrowd.task_price_cents(), 3);
        assert_eq!(Market::Amt.name(), "amt");
        assert_eq!(Market::ChinaCrowd.name(), "chinacrowd");
    }

    #[test]
    fn traced_platform_emits_market_route_events() {
        use cdb_obsv::{attr::names, Ring, Trace};
        use std::sync::Arc;
        let ring = Arc::new(Ring::with_capacity(16));
        let mut p = platform(&[1.0; 5], 1);
        p.set_trace(Trace::collector(ring.clone()));
        assert!(p.trace().on());
        p.ask_round(&[yes_task(1), yes_task(2)], 3);
        p.ask_round(&[], 3); // empty batch: no event
        let evs = ring.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, names::MARKET_ROUTE);
        assert_eq!(evs[0].get("market").unwrap().as_str(), Some("amt"));
        assert_eq!(evs[0].get_u64("n"), Some(2));
        assert_eq!(evs[0].get_u64("cents"), Some(5));
    }

    #[test]
    fn perfect_workers_always_answer_truth() {
        let mut p = platform(&[1.0; 5], 1);
        let asg = p.ask_round(&[yes_task(1)], 5);
        assert_eq!(asg.len(), 5);
        assert!(asg.iter().all(|a| a.answer == Answer::Choice(0)));
    }

    #[test]
    fn zero_accuracy_workers_always_wrong() {
        let mut p = platform(&[0.0; 5], 1);
        let asg = p.ask_round(&[yes_task(1)], 5);
        assert!(asg.iter().all(|a| a.answer == Answer::Choice(1)));
    }

    #[test]
    fn accuracy_is_respected_statistically() {
        let mut p = platform(&[0.8; 50], 42);
        let tasks: Vec<Task> = (0..200).map(yes_task).collect();
        let asg = p.ask_round(&tasks, 5);
        let correct = asg.iter().filter(|a| a.answer == Answer::Choice(0)).count();
        let rate = correct as f64 / asg.len() as f64;
        assert!((rate - 0.8).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn rounds_count_batches() {
        let mut p = platform(&[1.0; 5], 1);
        assert_eq!(p.rounds(), 0);
        p.ask_round(&[yes_task(1)], 3);
        p.ask_round(&[yes_task(2)], 3);
        p.ask_round(&[], 3); // empty batch is not a round
        assert_eq!(p.rounds(), 2);
    }

    #[test]
    fn log_accumulates_assignments() {
        let mut p = platform(&[1.0; 5], 1);
        p.ask_round(&[yes_task(1), yes_task(2)], 4);
        assert_eq!(p.log().assignment_count(), 8);
        assert_eq!(p.log().answers(TaskId(1)).len(), 4);
    }

    #[test]
    fn redundancy_uses_distinct_workers() {
        let mut p = platform(&[0.9; 8], 9);
        let asg = p.ask_round(&[yes_task(1)], 5);
        let mut ids: Vec<u32> = asg.iter().map(|a| a.worker.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn assigned_round_respects_assigner_choice() {
        let mut p = platform(&[1.0; 10], 3);
        let tasks = vec![yes_task(1), yes_task(2)];
        // Assigner always gives the lowest-id open task.
        let asg = p.ask_round_assigned(&tasks, 3, 1, &mut |_, open, _| {
            let mut ids: Vec<TaskId> = open.iter().map(|t| t.id).collect();
            ids.sort();
            ids.truncate(1);
            ids
        });
        assert_eq!(asg.len(), 6);
        assert_eq!(p.log().answers(TaskId(1)).len(), 3);
        assert_eq!(p.log().answers(TaskId(2)).len(), 3);
        assert_eq!(p.rounds(), 1);
    }

    #[test]
    fn assigned_round_never_gives_same_task_twice_to_one_worker() {
        let mut p = platform(&[1.0; 4], 3);
        let tasks = vec![yes_task(1)];
        let asg = p.ask_round_assigned(&tasks, 4, 5, &mut |_, open, _| {
            open.iter().map(|t| t.id).collect()
        });
        let mut workers: Vec<u32> = asg.iter().map(|a| a.worker.0).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 4);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn crowdflower_rejects_online_assignment() {
        let mut p =
            SimulatedPlatform::new(Market::CrowdFlower, WorkerPool::with_accuracies(&[1.0]), 0);
        p.ask_round_assigned(&[yes_task(1)], 1, 1, &mut |_, open, _| {
            open.iter().map(|t| t.id).collect()
        });
    }

    #[test]
    fn corrupt_changes_string() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for s in ["University of California", "ab", "x", ""] {
            let c = corrupt(s, &mut rng);
            assert_ne!(c, s, "corrupt({s:?}) did not change it");
        }
    }

    #[test]
    fn fill_task_answers_match_accuracy_model() {
        let mut p = platform(&[1.0], 1);
        let t = Task {
            id: TaskId(9),
            kind: TaskKind::FillInBlank { question: "affiliation?".into() },
            truth: Some(Answer::Text("MIT".into())),
            difficulty: 1.0,
            values: None,
            measure: None,
        };
        let w = Worker { id: WorkerId(0), accuracy: 1.0 };
        assert_eq!(p.simulate_answer(w, &t), Answer::Text("MIT".into()));
    }

    #[test]
    fn multi_choice_perfect_worker_reproduces_truth() {
        let mut p = platform(&[1.0], 1);
        let t = Task {
            id: TaskId(9),
            kind: TaskKind::MultiChoice {
                question: "topics?".into(),
                choices: vec!["db".into(), "ml".into(), "hci".into()],
            },
            truth: Some(Answer::choices(vec![0, 2])),
            difficulty: 1.0,
            values: None,
            measure: None,
        };
        let w = Worker { id: WorkerId(0), accuracy: 1.0 };
        assert_eq!(p.simulate_answer(w, &t), Answer::Choices(vec![0, 2]));
    }

    #[test]
    fn publish_round_is_nonblocking_and_finish_round_logs() {
        let mut p = platform(&[1.0; 8], 11);
        let latency = LatencyModel::default();
        let open = p.publish_round(&[yes_task(1), yes_task(2)], 3, &latency, 600_000, 0);
        assert_eq!(open.in_flight(), 6);
        assert_eq!(p.log().assignment_count(), 0, "publish must not log");
        assert_eq!(p.rounds(), 0, "publish must not advance the round");
        // Drain at the horizon: everything arrives before a 10-minute deadline
        // only if sampled latencies allow; collect at u64::MAX-ish horizon.
        let mut open = open;
        let collected = open.collect_arrived(SimTime::MAX);
        assert_eq!(collected.len(), 6);
        assert!(collected.iter().all(|a| a.answer == Answer::Choice(0)));
        p.finish_round(&collected);
        assert_eq!(p.log().assignment_count(), 6);
        assert_eq!(p.rounds(), 1);
    }

    #[test]
    fn replacement_respects_online_assignment_exclusions() {
        let mut p = platform(&[1.0; 3], 5);
        let latency = LatencyModel::default();
        let exclude = [WorkerId(0), WorkerId(1)];
        for _ in 0..8 {
            let r = p
                .dispatch_replacement(&yes_task(1), &exclude, &latency, 1000, 0, 1)
                .expect("one eligible worker remains");
            assert_eq!(r.worker.id, WorkerId(2));
            assert_eq!(r.attempt, 1);
        }
        // All workers excluded: requester-side assignment has nobody left.
        let all = [WorkerId(0), WorkerId(1), WorkerId(2)];
        assert!(p.dispatch_replacement(&yes_task(1), &all, &latency, 1000, 0, 1).is_none());
    }

    #[test]
    fn replacement_without_assignment_control_ignores_exclusions() {
        let mut p =
            SimulatedPlatform::new(Market::CrowdFlower, WorkerPool::with_accuracies(&[1.0]), 0);
        let latency = LatencyModel::default();
        let r = p
            .dispatch_replacement(&yes_task(1), &[WorkerId(0)], &latency, 1000, 0, 2)
            .expect("random assignment always finds a worker");
        assert_eq!(r.worker.id, WorkerId(0), "no control: excluded worker may recur");
    }

    #[test]
    fn trait_object_drives_the_platform() {
        let mut p = platform(&[1.0; 5], 1);
        let dynp: &mut dyn CrowdPlatform = &mut p;
        assert_eq!(dynp.market(), Market::Amt);
        let asg = dynp.ask_round(&[yes_task(1)], 3);
        assert_eq!(asg.len(), 3);
        assert_eq!(dynp.rounds(), 1);
        assert_eq!(dynp.log().assignment_count(), 3);
    }
}
