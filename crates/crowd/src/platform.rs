//! The simulated crowdsourcing market.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Answer, Assignment, AssignmentLog, Task, TaskId, TaskKind, Worker, WorkerId, WorkerPool};

/// The crowdsourcing markets CDB deploys on (§2.1). The distinction that
/// matters for optimization: AMT's developer model lets the requester's
/// server control *online task assignment*; CrowdFlower and ChinaCrowd do
/// not, so tasks there are assigned to random workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Market {
    /// Amazon Mechanical Turk (supports online assignment).
    Amt,
    /// CrowdFlower (no requester-side assignment control).
    CrowdFlower,
    /// ChinaCrowd (no requester-side assignment control).
    ChinaCrowd,
}

impl Market {
    /// True when the requester can choose which tasks each arriving worker
    /// receives — the prerequisite for CDB+'s task-assignment strategy.
    pub fn supports_online_assignment(self) -> bool {
        matches!(self, Market::Amt)
    }
}

/// A deterministic, seeded simulation of a crowdsourcing platform.
///
/// Workers answer according to their latent accuracy: a single-choice task
/// is answered correctly with probability `accuracy`, otherwise one of the
/// wrong choices is picked uniformly — the standard worker model the paper
/// adopts for its simulated study (§6.2).
#[derive(Debug)]
pub struct SimulatedPlatform {
    market: Market,
    pool: WorkerPool,
    rng: StdRng,
    log: AssignmentLog,
    round: usize,
}

impl SimulatedPlatform {
    /// Create a platform over a worker pool with a deterministic seed.
    pub fn new(market: Market, pool: WorkerPool, seed: u64) -> Self {
        SimulatedPlatform { market, pool, rng: StdRng::seed_from_u64(seed), log: AssignmentLog::new(), round: 0 }
    }

    /// Which market this simulates.
    pub fn market(&self) -> Market {
        self.market
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        self.pool_ref()
    }

    fn pool_ref(&self) -> &WorkerPool {
        &self.pool
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// The assignment log (all answers collected so far).
    pub fn log(&self) -> &AssignmentLog {
        &self.log
    }

    /// Publish a batch of tasks as one *round*: each task is answered by
    /// `redundancy` distinct randomly-drawn workers (the no-control market
    /// model). Returns the new assignments, which are also recorded in the
    /// log. A non-empty batch advances the round counter by one — the
    /// paper's latency metric is exactly this number of rounds.
    pub fn ask_round(&mut self, tasks: &[Task], redundancy: usize) -> Vec<Assignment> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(tasks.len() * redundancy);
        for task in tasks {
            let workers = self.pool.sample_distinct(redundancy.min(self.pool.len()), &mut self.rng);
            for w in workers {
                let answer = self.simulate_answer(w, task);
                let a = Assignment { task: task.id, worker: w.id, answer, round: self.round };
                self.log.record(a.clone());
                out.push(a);
            }
        }
        self.round += 1;
        out
    }

    /// Publish a batch of tasks as one round under AMT's developer model:
    /// workers arrive one at a time and the requester-supplied `assigner`
    /// decides which (up to `batch_size`) of the still-open tasks each
    /// arriving worker receives. The round ends when every task has
    /// `redundancy` answers.
    ///
    /// # Panics
    /// Panics when the market does not support online assignment.
    pub fn ask_round_assigned(
        &mut self,
        tasks: &[Task],
        redundancy: usize,
        batch_size: usize,
        assigner: &mut dyn FnMut(&Worker, &[&Task], &AssignmentLog) -> Vec<TaskId>,
    ) -> Vec<Assignment> {
        assert!(
            self.market.supports_online_assignment(),
            "{:?} does not support requester-side task assignment",
            self.market
        );
        if tasks.is_empty() {
            return Vec::new();
        }
        let mut need: std::collections::BTreeMap<TaskId, usize> =
            tasks.iter().map(|t| (t.id, redundancy)).collect();
        let by_id: std::collections::BTreeMap<TaskId, &Task> =
            tasks.iter().map(|t| (t.id, t)).collect();
        // Track which workers already answered which tasks in this round so
        // no worker answers the same task twice.
        let mut answered: std::collections::HashSet<(WorkerId, TaskId)> =
            std::collections::HashSet::new();
        let mut out = Vec::new();
        // Workers arrive in an endless random stream; bail out if the pool
        // cannot provide the required redundancy.
        let mut idle_arrivals = 0usize;
        while need.values().any(|&n| n > 0) {
            let w = self.pool.workers()[self.rng.gen_range(0..self.pool.len())];
            let open: Vec<&Task> = need
                .iter()
                .filter(|(id, &n)| n > 0 && !answered.contains(&(w.id, **id)))
                .map(|(id, _)| by_id[id])
                .collect();
            if open.is_empty() {
                idle_arrivals += 1;
                assert!(
                    idle_arrivals < 100 * self.pool.len().max(1),
                    "worker pool too small for redundancy {redundancy}"
                );
                continue;
            }
            idle_arrivals = 0;
            let chosen = assigner(&w, &open, &self.log);
            for tid in chosen.into_iter().take(batch_size) {
                let Some(task) = by_id.get(&tid) else { continue };
                if need[&tid] == 0 || answered.contains(&(w.id, tid)) {
                    continue;
                }
                let answer = self.simulate_answer(w, task);
                let a = Assignment { task: tid, worker: w.id, answer, round: self.round };
                self.log.record(a.clone());
                out.push(a);
                answered.insert((w.id, tid));
                *need.get_mut(&tid).expect("task known") -= 1;
            }
        }
        self.round += 1;
        out
    }

    /// Generate one worker's answer to one task according to the latent
    /// accuracy model.
    pub fn simulate_answer(&mut self, worker: Worker, task: &Task) -> Answer {
        // Difficulty-aware accuracy: easy tasks (difficulty -> 0) are
        // answered correctly almost always, hard tasks at the worker's
        // latent accuracy (the flat model of the paper's simulation).
        let eff = worker.accuracy + (1.0 - worker.accuracy) * (1.0 - task.difficulty) * 0.9;
        match (&task.kind, &task.truth) {
            (TaskKind::SingleChoice { choices, .. }, Some(Answer::Choice(truth))) => {
                if self.rng.gen::<f64>() < eff || choices.len() <= 1 {
                    Answer::Choice(*truth)
                } else {
                    // Uniform over the wrong choices.
                    let mut c = self.rng.gen_range(0..choices.len() - 1);
                    if c >= *truth {
                        c += 1;
                    }
                    Answer::Choice(c)
                }
            }
            (TaskKind::MultiChoice { choices, .. }, Some(Answer::Choices(truth))) => {
                // Membership of each choice is reported correctly with
                // probability `accuracy`, independently (the paper
                // decomposes a multi-choice task into ℓ single-choice
                // membership tasks).
                let mut picked = Vec::new();
                for i in 0..choices.len() {
                    let in_truth = truth.binary_search(&i).is_ok();
                    let correct = self.rng.gen::<f64>() < eff;
                    if in_truth == correct {
                        picked.push(i);
                    }
                }
                Answer::Choices(picked)
            }
            (TaskKind::FillInBlank { .. }, Some(Answer::Text(truth)))
            | (TaskKind::Collection { .. }, Some(Answer::Text(truth))) => {
                if self.rng.gen::<f64>() < eff {
                    Answer::Text(truth.clone())
                } else {
                    Answer::Text(corrupt(truth, &mut self.rng))
                }
            }
            // No ground truth: return an arbitrary deterministic answer —
            // the caller is exercising plumbing, not quality.
            (TaskKind::SingleChoice { .. }, _) => Answer::Choice(0),
            (TaskKind::MultiChoice { .. }, _) => Answer::Choices(vec![]),
            (TaskKind::FillInBlank { .. } | TaskKind::Collection { .. }, _) => {
                Answer::Text(String::new())
            }
        }
    }
}

/// Corrupt a string the way failing workers do: half the time a
/// character-level slip (drop, duplicate or swap — the answer stays
/// recognizable), half the time a completely different answer (the worker
/// did not know and guessed). Guaranteed to differ from the input for
/// inputs of length ≥ 2.
pub(crate) fn corrupt(s: &str, rng: &mut impl Rng) -> String {
    if rng.gen::<f64>() < 0.5 {
        // A wrong guess unrelated to the truth.
        return format!("unknown answer {}", rng.gen_range(0..1000u32));
    }
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return format!("{s}?");
    }
    let mut out = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => {
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        1 => {
            let i = rng.gen_range(0..out.len());
            let c = out[i];
            out.insert(i, c);
        }
        _ => {
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
            if out == chars {
                // Swapped identical characters; force a difference.
                out.remove(i);
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(accs: &[f64], seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(accs), seed)
    }

    fn yes_task(id: u64) -> Task {
        Task::join_check(TaskId(id), "MIT", "M.I.T.", true)
    }

    #[test]
    fn market_assignment_capability() {
        assert!(Market::Amt.supports_online_assignment());
        assert!(!Market::CrowdFlower.supports_online_assignment());
        assert!(!Market::ChinaCrowd.supports_online_assignment());
    }

    #[test]
    fn perfect_workers_always_answer_truth() {
        let mut p = platform(&[1.0; 5], 1);
        let asg = p.ask_round(&[yes_task(1)], 5);
        assert_eq!(asg.len(), 5);
        assert!(asg.iter().all(|a| a.answer == Answer::Choice(0)));
    }

    #[test]
    fn zero_accuracy_workers_always_wrong() {
        let mut p = platform(&[0.0; 5], 1);
        let asg = p.ask_round(&[yes_task(1)], 5);
        assert!(asg.iter().all(|a| a.answer == Answer::Choice(1)));
    }

    #[test]
    fn accuracy_is_respected_statistically() {
        let mut p = platform(&[0.8; 50], 42);
        let tasks: Vec<Task> = (0..200).map(yes_task).collect();
        let asg = p.ask_round(&tasks, 5);
        let correct = asg.iter().filter(|a| a.answer == Answer::Choice(0)).count();
        let rate = correct as f64 / asg.len() as f64;
        assert!((rate - 0.8).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn rounds_count_batches() {
        let mut p = platform(&[1.0; 5], 1);
        assert_eq!(p.rounds(), 0);
        p.ask_round(&[yes_task(1)], 3);
        p.ask_round(&[yes_task(2)], 3);
        p.ask_round(&[], 3); // empty batch is not a round
        assert_eq!(p.rounds(), 2);
    }

    #[test]
    fn log_accumulates_assignments() {
        let mut p = platform(&[1.0; 5], 1);
        p.ask_round(&[yes_task(1), yes_task(2)], 4);
        assert_eq!(p.log().assignment_count(), 8);
        assert_eq!(p.log().answers(TaskId(1)).len(), 4);
    }

    #[test]
    fn redundancy_uses_distinct_workers() {
        let mut p = platform(&[0.9; 8], 9);
        let asg = p.ask_round(&[yes_task(1)], 5);
        let mut ids: Vec<u32> = asg.iter().map(|a| a.worker.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn assigned_round_respects_assigner_choice() {
        let mut p = platform(&[1.0; 10], 3);
        let tasks = vec![yes_task(1), yes_task(2)];
        // Assigner always gives the lowest-id open task.
        let asg = p.ask_round_assigned(&tasks, 3, 1, &mut |_, open, _| {
            let mut ids: Vec<TaskId> = open.iter().map(|t| t.id).collect();
            ids.sort();
            ids.truncate(1);
            ids
        });
        assert_eq!(asg.len(), 6);
        assert_eq!(p.log().answers(TaskId(1)).len(), 3);
        assert_eq!(p.log().answers(TaskId(2)).len(), 3);
        assert_eq!(p.rounds(), 1);
    }

    #[test]
    fn assigned_round_never_gives_same_task_twice_to_one_worker() {
        let mut p = platform(&[1.0; 4], 3);
        let tasks = vec![yes_task(1)];
        let asg = p.ask_round_assigned(&tasks, 4, 5, &mut |_, open, _| {
            open.iter().map(|t| t.id).collect()
        });
        let mut workers: Vec<u32> = asg.iter().map(|a| a.worker.0).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 4);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn crowdflower_rejects_online_assignment() {
        let mut p = SimulatedPlatform::new(
            Market::CrowdFlower,
            WorkerPool::with_accuracies(&[1.0]),
            0,
        );
        p.ask_round_assigned(&[yes_task(1)], 1, 1, &mut |_, open, _| {
            open.iter().map(|t| t.id).collect()
        });
    }

    #[test]
    fn corrupt_changes_string() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for s in ["University of California", "ab", "x", ""] {
            let c = corrupt(s, &mut rng);
            assert_ne!(c, s, "corrupt({s:?}) did not change it");
        }
    }

    #[test]
    fn fill_task_answers_match_accuracy_model() {
        let mut p = platform(&[1.0], 1);
        let t = Task {
            id: TaskId(9),
            kind: TaskKind::FillInBlank { question: "affiliation?".into() },
            truth: Some(Answer::Text("MIT".into())),
            difficulty: 1.0,
        };
        let w = Worker { id: WorkerId(0), accuracy: 1.0 };
        assert_eq!(p.simulate_answer(w, &t), Answer::Text("MIT".into()));
    }

    #[test]
    fn multi_choice_perfect_worker_reproduces_truth() {
        let mut p = platform(&[1.0], 1);
        let t = Task {
            id: TaskId(9),
            kind: TaskKind::MultiChoice {
                question: "topics?".into(),
                choices: vec!["db".into(), "ml".into(), "hci".into()],
            },
            truth: Some(Answer::choices(vec![0, 2])),
            difficulty: 1.0,
        };
        let w = Worker { id: WorkerId(0), accuracy: 1.0 };
        assert_eq!(p.simulate_answer(w, &t), Answer::Choices(vec![0, 2]));
    }
}
