//! Non-blocking answer collection with per-assignment deadlines.
//!
//! [`SimulatedPlatform::publish_round`](crate::SimulatedPlatform::publish_round)
//! returns an [`OpenRound`] instead of blocking: answers are *pending*
//! until the virtual clock reaches their arrival instant, and each
//! assignment carries a deadline after which the requester may reassign
//! the task to a different worker. This is the substrate `cdb-runtime`
//! builds its event loop on.

use crate::latency::SimTime;
use crate::{Answer, Assignment, TaskId, Worker};

/// One in-flight assignment: dispatched to a worker, answer not yet in.
#[derive(Debug, Clone)]
pub struct PendingAssignment {
    /// The task the worker is answering.
    pub task: TaskId,
    /// The worker it was assigned to.
    pub worker: Worker,
    /// The answer the worker will submit when they respond — pre-drawn at
    /// dispatch so that arrival order cannot change its value.
    pub answer: Answer,
    /// Virtual instant the assignment was dispatched.
    pub dispatched_at: SimTime,
    /// Virtual instant the answer arrives; `None` when the worker dropped
    /// out or abandoned the HIT and will never respond.
    pub arrives_at: Option<SimTime>,
    /// Per-assignment deadline, after which the requester reassigns.
    pub deadline: SimTime,
    /// 0 for the original dispatch; incremented on each reassignment.
    pub attempt: u32,
}

impl PendingAssignment {
    /// True once the virtual clock has reached the arrival instant.
    pub fn arrived_by(&self, now: SimTime) -> bool {
        matches!(self.arrives_at, Some(t) if t <= now)
    }

    /// True when the deadline has passed without the answer arriving in
    /// time: the trigger for reassignment.
    pub fn overdue_at(&self, now: SimTime) -> bool {
        now >= self.deadline && !self.arrived_by(self.deadline)
    }

    /// Turn an arrived pending assignment into a log-ready [`Assignment`].
    pub fn into_assignment(self, round: usize) -> Assignment {
        Assignment { task: self.task, worker: self.worker.id, answer: self.answer, round }
    }
}

/// A published batch whose answers are collected as virtual time advances —
/// the non-blocking counterpart of a synchronous round.
#[derive(Debug, Default)]
pub struct OpenRound {
    /// Round number the collected assignments will be recorded under.
    pub round: usize,
    /// Still-in-flight assignments.
    pub pending: Vec<PendingAssignment>,
}

impl OpenRound {
    /// Remove and return every assignment whose answer has arrived by
    /// `now`, in deterministic (arrival, task, worker) order.
    pub fn collect_arrived(&mut self, now: SimTime) -> Vec<Assignment> {
        let mut arrived = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].arrived_by(now) {
                arrived.push(self.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        arrived.sort_by_key(|p| (p.arrives_at, p.task, p.worker.id, p.attempt));
        let round = self.round;
        arrived.into_iter().map(|p| p.into_assignment(round)).collect()
    }

    /// Remove and return every assignment past its deadline with no answer
    /// in time, in deterministic (deadline, task, worker) order — the
    /// caller decides whether to reassign each one.
    pub fn take_overdue(&mut self, now: SimTime) -> Vec<PendingAssignment> {
        let mut overdue = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].overdue_at(now) {
                overdue.push(self.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        overdue.sort_by_key(|p| (p.deadline, p.task, p.worker.id, p.attempt));
        overdue
    }

    /// The earliest virtual instant strictly after `now` at which
    /// [`OpenRound::collect_arrived`] or [`OpenRound::take_overdue`] could
    /// yield more work, or `None` when nothing is pending.
    pub fn next_event_after(&self, now: SimTime) -> Option<SimTime> {
        self.pending
            .iter()
            .flat_map(|p| {
                let arrival = p.arrives_at.filter(|&t| t <= p.deadline);
                [arrival, Some(p.deadline)]
            })
            .flatten()
            .filter(|&t| t > now)
            .min()
    }

    /// Number of assignments still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True once every pending assignment has arrived or timed out and
    /// been taken.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkerId;

    fn pending(
        task: u64,
        worker: u32,
        arrives_at: Option<SimTime>,
        deadline: SimTime,
    ) -> PendingAssignment {
        PendingAssignment {
            task: TaskId(task),
            worker: Worker { id: WorkerId(worker), accuracy: 1.0 },
            answer: Answer::Choice(0),
            dispatched_at: 0,
            arrives_at,
            deadline,
            attempt: 0,
        }
    }

    #[test]
    fn arrivals_are_collected_in_time_order() {
        let mut open = OpenRound {
            round: 2,
            pending: vec![
                pending(1, 0, Some(50), 100),
                pending(2, 1, Some(20), 100),
                pending(3, 2, Some(80), 100),
            ],
        };
        assert_eq!(open.collect_arrived(10).len(), 0);
        let got = open.collect_arrived(60);
        assert_eq!(got.iter().map(|a| a.task).collect::<Vec<_>>(), vec![TaskId(2), TaskId(1)]);
        assert!(got.iter().all(|a| a.round == 2));
        assert_eq!(open.in_flight(), 1);
        open.collect_arrived(100);
        assert!(open.is_drained());
    }

    #[test]
    fn overdue_covers_late_and_never_arriving_answers() {
        let mut open = OpenRound {
            round: 0,
            pending: vec![
                pending(1, 0, Some(150), 100), // late: arrives after deadline
                pending(2, 1, None, 100),      // abandoned: never arrives
                pending(3, 2, Some(90), 100),  // in time
            ],
        };
        assert!(open.take_overdue(99).is_empty());
        let overdue = open.take_overdue(100);
        assert_eq!(overdue.iter().map(|p| p.task).collect::<Vec<_>>(), vec![TaskId(1), TaskId(2)]);
        // The in-time answer is still collectable.
        assert_eq!(open.collect_arrived(100).len(), 1);
    }

    #[test]
    fn next_event_walks_arrivals_then_deadlines() {
        let open = OpenRound {
            round: 0,
            pending: vec![pending(1, 0, Some(40), 100), pending(2, 1, None, 70)],
        };
        assert_eq!(open.next_event_after(0), Some(40));
        assert_eq!(open.next_event_after(40), Some(70));
        assert_eq!(open.next_event_after(70), Some(100));
        assert_eq!(open.next_event_after(100), None);
        // A late arrival (after its own deadline) is not an event; the
        // deadline is.
        let late = OpenRound { round: 0, pending: vec![pending(1, 0, Some(150), 100)] };
        assert_eq!(late.next_event_after(0), Some(100));
        assert_eq!(late.next_event_after(100), None);
    }
}
