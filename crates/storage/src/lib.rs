//! In-memory relational substrate for CDB.
//!
//! CDB is a crowd-powered *database*: requesters define tables (possibly
//! with `CROWD` columns whose values the crowd fills in, or entire `CROWD`
//! tables whose rows the crowd collects) and query them with CQL. This
//! crate provides the storage layer: typed [`Value`]s including the crowd
//! null `CNULL`, [`Schema`]s that mark crowd columns, row-oriented
//! [`Table`]s and a [`Database`] catalog with simple per-column statistics.
//!
//! # Example
//!
//! ```
//! use cdb_storage::{ColumnDef, ColumnType, Database, Schema, Table, Value};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::new("name", ColumnType::Text),
//!     ColumnDef::crowd("affiliation", ColumnType::Text),
//! ]);
//! let mut table = Table::new("Researcher", schema);
//! table.push(vec![Value::from("Michael Franklin"), Value::CNull]).unwrap();
//!
//! let mut db = Database::new();
//! db.add_table(table).unwrap();
//! assert_eq!(db.table("Researcher").unwrap().row_count(), 1);
//! ```

mod database;
mod error;
mod schema;
mod table;
mod value;

pub use database::{Database, TableStats};
pub use error::StorageError;
pub use schema::{ColumnDef, ColumnType, Schema};
pub use table::{Table, TupleId};
pub use value::Value;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, StorageError>;
