//! Storage error type.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    DuplicateTable(String),
    /// No table with this name exists.
    UnknownTable(String),
    /// No column with this name exists in the table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value's type does not match the column type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Expected column type name.
        expected: &'static str,
        /// Supplied value rendered for diagnostics.
        got: String,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Rows in the table.
        len: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} columns")
            }
            StorageError::TypeMismatch { column, expected, got } => {
                write!(f, "column `{column}` expects {expected}, got {got}")
            }
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for table with {len} rows")
            }
        }
    }
}

impl std::error::Error for StorageError {}
