//! Table schemas with CROWD column markers.

use serde::{Deserialize, Serialize};

/// Column data types supported by CQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// Variable-length text (`varchar`).
    Text,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
}

impl ColumnType {
    /// Human-readable type name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Text => "text",
            ColumnType::Int => "int",
            ColumnType::Float => "float",
        }
    }
}

/// One column definition: name, type and whether it is a `CROWD` column
/// (its missing values can be crowdsourced with `FILL`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (case-preserving, matched case-insensitively).
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// True for `CROWD` columns.
    pub crowd: bool,
}

impl ColumnDef {
    /// An ordinary (non-crowd) column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef { name: name.into(), ty, crowd: false }
    }

    /// A `CROWD` column.
    pub fn crowd(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef { name: name.into(), ty, crowd: true }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    ///
    /// # Panics
    /// Panics if two columns share a name (case-insensitively) — schemas are
    /// requester-authored and a duplicate is a programming error.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert!(
                    !a.name.eq_ignore_ascii_case(&b.name),
                    "duplicate column name `{}`",
                    a.name
                );
            }
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by case-insensitive name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::crowd("affiliation", ColumnType::Text),
            ColumnDef::new("citations", ColumnType::Int),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("NAME"), Some(0));
        assert_eq!(s.column_index("Affiliation"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn crowd_flag_is_preserved() {
        let s = schema();
        assert!(!s.column("name").unwrap().crowd);
        assert!(s.column("affiliation").unwrap().crowd);
    }

    #[test]
    fn arity_counts_columns() {
        assert_eq!(schema().arity(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_rejected() {
        Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("NAME", ColumnType::Int),
        ]);
    }

    #[test]
    fn type_names() {
        assert_eq!(ColumnType::Text.name(), "text");
        assert_eq!(ColumnType::Int.name(), "int");
        assert_eq!(ColumnType::Float.name(), "float");
    }
}
