//! Cell values, including the crowd null `CNULL`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single cell value.
///
/// `CNull` is CQL's `CNULL`: the value is *unknown and crowdsourceable* —
/// a `FILL` statement targets exactly the `CNull` cells of a crowd column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing value to be filled by the crowd (CQL `CNULL`).
    CNull,
    /// Text value.
    Text(String),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
}

impl Value {
    /// True for `CNULL`.
    pub fn is_cnull(&self) -> bool {
        matches!(self, Value::CNull)
    }

    /// Borrow the text payload if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Render the value as the string shown to crowd workers. `CNULL`
    /// renders as an empty string (the worker sees a blank to fill).
    pub fn display_string(&self) -> String {
        match self {
            Value::CNull => String::new(),
            Value::Text(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => x.to_string(),
        }
    }

    /// Equality used by *traditional* (non-crowd) predicates: `CNULL`
    /// equals nothing, numbers compare numerically, text compares exactly.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::CNull, _) | (_, Value::CNull) => false,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::CNull => write!(f, "CNULL"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnull_is_detected() {
        assert!(Value::CNull.is_cnull());
        assert!(!Value::from("x").is_cnull());
    }

    #[test]
    fn cnull_never_sql_equal() {
        assert!(!Value::CNull.sql_eq(&Value::CNull));
        assert!(!Value::CNull.sql_eq(&Value::from("x")));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).sql_eq(&Value::Float(3.5)));
    }

    #[test]
    fn text_equality_is_exact() {
        assert!(Value::from("USA").sql_eq(&Value::from("USA")));
        assert!(!Value::from("USA").sql_eq(&Value::from("US")));
        assert!(!Value::from("3").sql_eq(&Value::Int(3)));
    }

    #[test]
    fn display_string_blank_for_cnull() {
        assert_eq!(Value::CNull.display_string(), "");
        assert_eq!(Value::Int(7).display_string(), "7");
        assert_eq!(Value::from("MIT").display_string(), "MIT");
    }
}
