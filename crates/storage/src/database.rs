//! Database catalog and statistics.

use std::collections::BTreeMap;

use crate::{StorageError, Table, Value};

/// Per-table statistics maintained for query optimization (the paper's
/// "MetaData & Statistics" component keeps selectivities and edge weights).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows.
    pub rows: usize,
    /// Per-column count of distinct non-CNULL display strings.
    pub distinct: BTreeMap<String, usize>,
    /// Per-column count of CNULL cells (candidates for `FILL`).
    pub cnulls: BTreeMap<String, usize>,
}

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table. Fails if the (case-insensitive) name is taken.
    pub fn add_table(&mut self, table: Table) -> crate::Result<()> {
        let key = table.name().to_lowercase();
        if self.tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(table.name().to_string()));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> crate::Result<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> crate::Result<&mut Table> {
        self.tables
            .get_mut(&name.to_lowercase())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// True when a table with this name exists.
    pub fn contains_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_lowercase())
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Compute statistics for one table.
    pub fn stats(&self, name: &str) -> crate::Result<TableStats> {
        let t = self.table(name)?;
        let mut distinct = BTreeMap::new();
        let mut cnulls = BTreeMap::new();
        for col in t.schema().columns() {
            let mut seen = std::collections::HashSet::new();
            let mut nulls = 0usize;
            for row in t.rows() {
                let v = &row[t.schema().column_index(&col.name).expect("column exists")];
                if let Value::CNull = v {
                    nulls += 1;
                } else {
                    seen.insert(v.display_string());
                }
            }
            distinct.insert(col.name.clone(), seen.len());
            cnulls.insert(col.name.clone(), nulls);
        }
        Ok(TableStats { rows: t.row_count(), distinct, cnulls })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, ColumnType, Schema};

    fn university() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("country", ColumnType::Text),
        ]);
        let mut t = Table::new("University", schema);
        t.push(vec![Value::from("MIT"), Value::from("USA")]).unwrap();
        t.push(vec![Value::from("Stanford"), Value::from("USA")]).unwrap();
        t.push(vec![Value::from("Cambridge"), Value::CNull]).unwrap();
        t
    }

    #[test]
    fn add_and_lookup_case_insensitive() {
        let mut db = Database::new();
        db.add_table(university()).unwrap();
        assert!(db.table("university").is_ok());
        assert!(db.table("UNIVERSITY").is_ok());
        assert!(db.contains_table("University"));
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.add_table(university()).unwrap();
        let err = db.add_table(university()).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateTable(_)));
    }

    #[test]
    fn unknown_table_error() {
        let db = Database::new();
        assert!(matches!(db.table("nope"), Err(StorageError::UnknownTable(_))));
    }

    #[test]
    fn stats_count_distinct_and_cnulls() {
        let mut db = Database::new();
        db.add_table(university()).unwrap();
        let s = db.stats("University").unwrap();
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct["name"], 3);
        assert_eq!(s.distinct["country"], 1); // USA appears twice
        assert_eq!(s.cnulls["country"], 1);
        assert_eq!(s.cnulls["name"], 0);
    }

    #[test]
    fn table_mut_allows_fill() {
        let mut db = Database::new();
        db.add_table(university()).unwrap();
        db.table_mut("University").unwrap().set_cell(2, "country", Value::from("UK")).unwrap();
        assert_eq!(db.stats("University").unwrap().cnulls["country"], 0);
    }
}
