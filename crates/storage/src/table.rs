//! Row-oriented tables.

use serde::{Deserialize, Serialize};

use crate::{ColumnType, Schema, StorageError, Value};

/// Identifies a tuple inside a [`crate::Database`]: `(table name, row)`.
///
/// The CDB graph query model creates one graph vertex per tuple; `TupleId`
/// is the link from graph vertices back to stored rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId {
    /// Owning table name.
    pub table: String,
    /// Zero-based row index.
    pub row: usize,
}

impl TupleId {
    /// Construct a tuple id.
    pub fn new(table: impl Into<String>, row: usize) -> Self {
        TupleId { table: table.into(), row }
    }
}

/// A named, schema-checked, row-oriented table.
///
/// A table may itself be a `CROWD` table (CQL `CREATE CROWD TABLE`): its
/// rows are collected from the crowd under the open-world assumption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
    crowd: bool,
}

impl Table {
    /// An empty ordinary table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table { name: name.into(), schema, rows: Vec::new(), crowd: false }
    }

    /// An empty `CROWD` table (rows are crowd-collected).
    pub fn new_crowd(name: impl Into<String>, schema: Schema) -> Self {
        Table { name: name.into(), schema, rows: Vec::new(), crowd: true }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// True for `CROWD` tables.
    pub fn is_crowd(&self) -> bool {
        self.crowd
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after checking arity and types. Returns the new row's
    /// index.
    pub fn push(&mut self, row: Vec<Value>) -> crate::Result<usize> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (col, v) in self.schema.columns().iter().zip(&row) {
            let ok = matches!(
                (col.ty, v),
                (_, Value::CNull)
                    | (ColumnType::Text, Value::Text(_))
                    | (ColumnType::Int, Value::Int(_))
                    | (ColumnType::Float, Value::Float(_) | Value::Int(_))
            );
            if !ok {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name(),
                    got: v.to_string(),
                });
            }
        }
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    /// Borrow a row.
    pub fn row(&self, idx: usize) -> crate::Result<&[Value]> {
        self.rows
            .get(idx)
            .map(Vec::as_slice)
            .ok_or(StorageError::RowOutOfBounds { row: idx, len: self.rows.len() })
    }

    /// Borrow a cell by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> crate::Result<&Value> {
        let col = self.schema.column_index(column).ok_or_else(|| StorageError::UnknownColumn {
            table: self.name.clone(),
            column: column.to_string(),
        })?;
        Ok(&self.row(row)?[col])
    }

    /// Overwrite a cell (used by `FILL` when the crowd supplies a value).
    pub fn set_cell(&mut self, row: usize, column: &str, value: Value) -> crate::Result<()> {
        let col = self.schema.column_index(column).ok_or_else(|| StorageError::UnknownColumn {
            table: self.name.clone(),
            column: column.to_string(),
        })?;
        let len = self.rows.len();
        let r = self.rows.get_mut(row).ok_or(StorageError::RowOutOfBounds { row, len })?;
        r[col] = value;
        Ok(())
    }

    /// Iterate over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// All values of a column as display strings (what a crowd worker would
    /// see); used to build similarity-join inputs.
    pub fn column_strings(&self, column: &str) -> crate::Result<Vec<String>> {
        let col = self.schema.column_index(column).ok_or_else(|| StorageError::UnknownColumn {
            table: self.name.clone(),
            column: column.to_string(),
        })?;
        Ok(self.rows.iter().map(|r| r[col].display_string()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnDef;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("number", ColumnType::Int),
        ]);
        Table::new("Citation", schema)
    }

    #[test]
    fn push_and_read_roundtrip() {
        let mut t = table();
        let idx = t.push(vec![Value::from("CrowdER"), Value::Int(56)]).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(t.cell(0, "title").unwrap().as_text(), Some("CrowdER"));
        assert_eq!(t.cell(0, "NUMBER").unwrap().as_int(), Some(56));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        let err = t.push(vec![Value::from("x")]).unwrap_err();
        assert_eq!(err, StorageError::ArityMismatch { expected: 2, got: 1 });
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = table();
        let err = t.push(vec![Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn cnull_allowed_in_any_column() {
        let mut t = table();
        t.push(vec![Value::CNull, Value::CNull]).unwrap();
        assert!(t.cell(0, "title").unwrap().is_cnull());
    }

    #[test]
    fn int_coerces_into_float_column() {
        let schema = Schema::new(vec![ColumnDef::new("score", ColumnType::Float)]);
        let mut t = Table::new("S", schema);
        t.push(vec![Value::Int(3)]).unwrap();
    }

    #[test]
    fn set_cell_fills_value() {
        let mut t = table();
        t.push(vec![Value::CNull, Value::Int(0)]).unwrap();
        t.set_cell(0, "title", Value::from("filled")).unwrap();
        assert_eq!(t.cell(0, "title").unwrap().as_text(), Some("filled"));
    }

    #[test]
    fn out_of_bounds_row() {
        let t = table();
        assert!(matches!(t.row(0), Err(StorageError::RowOutOfBounds { .. })));
    }

    #[test]
    fn unknown_column() {
        let mut t = table();
        t.push(vec![Value::from("x"), Value::Int(1)]).unwrap();
        assert!(matches!(t.cell(0, "nope"), Err(StorageError::UnknownColumn { .. })));
    }

    #[test]
    fn column_strings_render_cnull_blank() {
        let mut t = table();
        t.push(vec![Value::from("a"), Value::Int(1)]).unwrap();
        t.push(vec![Value::CNull, Value::Int(2)]).unwrap();
        assert_eq!(t.column_strings("title").unwrap(), vec!["a".to_string(), String::new()]);
    }

    #[test]
    fn crowd_table_flag() {
        let schema = Schema::new(vec![ColumnDef::new("name", ColumnType::Text)]);
        assert!(Table::new_crowd("University", schema).is_crowd());
    }
}
