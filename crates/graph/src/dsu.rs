//! Union-find (disjoint set union) with path halving and union by size.

/// Disjoint-set forest over elements `0..n`.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// A forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n], components: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Representative of the set containing `x` without path compression —
    /// for read-only callers (frozen snapshots shared behind an `Arc`).
    /// Union-by-size keeps tree depth `O(log n)`, so skipping compression
    /// stays cheap.
    pub fn find_ro(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets containing `a` and `b`; returns true if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Append a fresh singleton element and return its index. Lets callers
    /// intern values lazily instead of sizing the forest up front.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.size.push(1);
        self.components += 1;
        id
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_are_disconnected() {
        let mut d = UnionFind::new(3);
        assert!(!d.connected(0, 1));
        assert_eq!(d.component_count(), 3);
        assert_eq!(d.set_size(0), 1);
    }

    #[test]
    fn union_connects_and_counts() {
        let mut d = UnionFind::new(4);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0)); // already merged
        assert!(d.connected(0, 1));
        assert!(!d.connected(0, 2));
        assert_eq!(d.component_count(), 2);
        assert!(d.union(1, 2));
        assert_eq!(d.component_count(), 1);
        assert_eq!(d.set_size(3), 4);
    }

    #[test]
    fn push_grows_the_forest_with_singletons() {
        let mut d = UnionFind::new(2);
        d.union(0, 1);
        let v = d.push();
        assert_eq!(v, 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.component_count(), 2);
        assert!(!d.connected(0, 2));
        d.union(1, 2);
        assert_eq!(d.set_size(2), 3);
    }

    #[test]
    fn empty_forest() {
        let d = UnionFind::new(0);
        assert!(d.is_empty());
        assert_eq!(d.component_count(), 0);
    }

    proptest! {
        #[test]
        fn transitivity(ops in prop::collection::vec((0usize..20, 0usize..20), 0..60)) {
            let mut d = UnionFind::new(20);
            for (a, b) in ops {
                d.union(a, b);
            }
            // connected is an equivalence relation: transitive via representatives
            for a in 0..20 {
                for b in 0..20 {
                    for c in 0..20 {
                        if d.connected(a, b) && d.connected(b, c) {
                            prop_assert!(d.connected(a, c));
                        }
                    }
                }
            }
        }

        #[test]
        fn component_count_matches_distinct_roots(ops in prop::collection::vec((0usize..15, 0usize..15), 0..40)) {
            let mut d = UnionFind::new(15);
            for (a, b) in ops {
                d.union(a, b);
            }
            let roots: std::collections::BTreeSet<usize> = (0..15).map(|v| d.find(v)).collect();
            prop_assert_eq!(roots.len(), d.component_count());
        }
    }
}
