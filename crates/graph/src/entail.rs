//! Entailment over crowd equality answers: positive transitive closure plus
//! negative edge propagation (Wang et al., "Leveraging Transitive Relations
//! for Crowdsourced Joins").
//!
//! Positive answers (`a = b`) merge DSU components; negative answers
//! (`a ≠ b`) are stored as adjacency between *current roots* and re-homed on
//! every union (small-to-large), so a later `find` never consults a stale
//! root — the bug class this module exists to eliminate (see
//! `cdb-core::ops::crowd_group`, which previously keyed its negative set by
//! roots frozen at insertion time). Contradictory answers are detected, not
//! silently absorbed: asserting `a = b` while a negative edge connects their
//! components (or `a ≠ b` while connected) is rejected.
//!
//! A proof forest over the recorded positive edges yields an *entailment
//! depth* per derived fact — the number of crowd answers the inference
//! chains through — used by the answer-reuse layer for provenance.

use crate::UnionFind;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Result of asserting one crowd answer into the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assertion {
    /// The fact was new and is now part of the closure.
    Inserted,
    /// The fact was already entailed; nothing changed.
    Redundant,
    /// The fact contradicts the existing closure and was rejected.
    Contradiction,
}

/// What the closure knows about a pair of elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entailment {
    /// Entailed equal; depth = number of recorded answers chained through.
    Same { depth: usize },
    /// Entailed distinct; depth counts the negative edge plus the positive
    /// paths connecting each endpoint to the negative edge's endpoints.
    Different { depth: usize },
    /// Not determined by the recorded answers.
    Unknown,
}

/// DSU-backed positive/negative entailment graph over elements `0..len()`.
#[derive(Debug, Clone, Default)]
pub struct EntailmentGraph {
    dsu: UnionFind,
    /// Negative edges keyed by current component root: `neg[r]` holds, for
    /// each adversary root `s`, one witness pair `(a, b)` with `a` in `r`'s
    /// component and `b` in `s`'s. Kept symmetric and re-homed on union.
    neg: Vec<HashMap<usize, (usize, usize)>>,
    /// Proof forest: spanning adjacency over *recorded* positive answers.
    pos_adj: Vec<Vec<usize>>,
}

impl EntailmentGraph {
    /// An empty graph over `n` elements.
    pub fn new(n: usize) -> Self {
        EntailmentGraph {
            dsu: UnionFind::new(n),
            neg: vec![HashMap::new(); n],
            pos_adj: vec![Vec::new(); n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.dsu.len()
    }

    /// True when the graph has no elements.
    pub fn is_empty(&self) -> bool {
        self.dsu.is_empty()
    }

    /// Append a fresh element and return its id.
    pub fn push(&mut self) -> usize {
        self.neg.push(HashMap::new());
        self.pos_adj.push(Vec::new());
        self.dsu.push()
    }

    /// Record a crowd answer `a = b`. Rejects the union (returning
    /// [`Assertion::Contradiction`]) when a negative edge already separates
    /// the two components.
    pub fn assert_same(&mut self, a: usize, b: usize) -> Assertion {
        let (ra, rb) = (self.dsu.find(a), self.dsu.find(b));
        if ra == rb {
            return Assertion::Redundant;
        }
        if self.neg[ra].contains_key(&rb) {
            return Assertion::Contradiction;
        }
        self.pos_adj[a].push(b);
        self.pos_adj[b].push(a);
        self.dsu.union(a, b);
        let root = self.dsu.find(a);
        let (winner, loser) = if root == ra { (ra, rb) } else { (rb, ra) };
        // Re-home the loser's negative adjacency onto the winner, updating
        // the reverse entries so every key stays a live root. When both the
        // winner and the loser already held a negative edge to the same
        // adversary, the winner's witness survives on BOTH sides — the map
        // must stay symmetric or `entails(a, b)` and `entails(b, a)` would
        // report different proof depths.
        let moved: Vec<(usize, (usize, usize))> = self.neg[loser].drain().collect();
        for (adversary, witness) in moved {
            self.neg[adversary].remove(&loser);
            self.neg[adversary].entry(winner).or_insert(witness);
            self.neg[winner].entry(adversary).or_insert(witness);
        }
        Assertion::Inserted
    }

    /// Record a crowd answer `a ≠ b`. Rejects it when `a` and `b` are
    /// already entailed equal.
    pub fn assert_different(&mut self, a: usize, b: usize) -> Assertion {
        let (ra, rb) = (self.dsu.find(a), self.dsu.find(b));
        if ra == rb {
            return Assertion::Contradiction;
        }
        if self.neg[ra].contains_key(&rb) {
            return Assertion::Redundant;
        }
        self.neg[ra].insert(rb, (a, b));
        self.neg[rb].insert(ra, (a, b));
        Assertion::Inserted
    }

    /// What the recorded answers entail about `(a, b)`. Takes `&self`
    /// (finds skip path compression) so frozen snapshots shared behind an
    /// `Arc` can answer lookups without cloning.
    pub fn entails(&self, a: usize, b: usize) -> Entailment {
        if a == b {
            return Entailment::Same { depth: 0 };
        }
        let (ra, rb) = (self.dsu.find_ro(a), self.dsu.find_ro(b));
        if ra == rb {
            return Entailment::Same { depth: self.proof_depth(a, b) };
        }
        if let Some(&(wa, wb)) = self.neg[ra].get(&rb) {
            // Orient the witness pair so `wa` sits in `a`'s component.
            let (wa, wb) = if self.dsu.find_ro(wa) == ra { (wa, wb) } else { (wb, wa) };
            let depth = 1 + self.proof_depth(a, wa) + self.proof_depth(b, wb);
            return Entailment::Different { depth };
        }
        Entailment::Unknown
    }

    /// True when `a` and `b` are entailed equal.
    pub fn same(&self, a: usize, b: usize) -> bool {
        matches!(self.entails(a, b), Entailment::Same { .. })
    }

    /// True when `a` and `b` are entailed distinct.
    pub fn different(&self, a: usize, b: usize) -> bool {
        matches!(self.entails(a, b), Entailment::Different { .. })
    }

    /// Current representative of `x`'s positive component. Stable only
    /// until the next [`assert_same`](Self::assert_same) — use for
    /// scheduling/grouping, never as a persistent key (persisting roots
    /// across unions is exactly the stale-root bug this type prevents).
    pub fn root(&mut self, x: usize) -> usize {
        self.dsu.find(x)
    }

    /// Distinct component roots (sorted), for tests and diagnostics.
    pub fn roots(&mut self) -> BTreeSet<usize> {
        (0..self.dsu.len()).map(|v| self.dsu.find(v)).collect()
    }

    /// BFS distance through the recorded positive answers; 0 when `a == b`.
    /// Both endpoints are in the same component, so a path always exists.
    fn proof_depth(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let mut dist: HashMap<usize, usize> = HashMap::new();
        dist.insert(a, 0);
        let mut queue = VecDeque::from([a]);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            for &v in &self.pos_adj[u] {
                if v == b {
                    return du + 1;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
        // Unreachable for same-component queries; be defensive anyway.
        usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn positive_transitivity_with_depth() {
        let mut g = EntailmentGraph::new(4);
        assert_eq!(g.assert_same(0, 1), Assertion::Inserted);
        assert_eq!(g.assert_same(1, 2), Assertion::Inserted);
        assert_eq!(g.entails(0, 2), Entailment::Same { depth: 2 });
        assert_eq!(g.entails(0, 1), Entailment::Same { depth: 1 });
        assert_eq!(g.entails(0, 3), Entailment::Unknown);
        assert_eq!(g.assert_same(2, 0), Assertion::Redundant);
    }

    #[test]
    fn negative_entailment_propagates_through_unions() {
        let mut g = EntailmentGraph::new(4);
        g.assert_different(0, 2);
        // These unions re-root both components; the negative edge must
        // follow the live roots (the stale-root bug this module fixes).
        g.assert_same(0, 1);
        g.assert_same(2, 3);
        assert_eq!(g.entails(1, 3), Entailment::Different { depth: 3 });
        assert_eq!(g.entails(0, 2), Entailment::Different { depth: 1 });
        assert_eq!(g.assert_different(1, 3), Assertion::Redundant);
    }

    #[test]
    fn rehomed_negative_witnesses_stay_symmetric() {
        // Both 0 (the union winner) and 1 (the loser) hold negative edges
        // to 4 before they merge. Re-homing must keep the winner's witness
        // on BOTH sides of the symmetric map, or the two query directions
        // would report different depths.
        let mut g = EntailmentGraph::new(5);
        g.assert_different(0, 4);
        g.assert_different(1, 4);
        g.assert_same(0, 1);
        assert_eq!(g.entails(0, 4), Entailment::Different { depth: 1 });
        assert_eq!(g.entails(4, 0), g.entails(0, 4));
        assert_eq!(g.entails(1, 4), Entailment::Different { depth: 2 });
        assert_eq!(g.entails(4, 1), g.entails(1, 4));
    }

    #[test]
    fn contradictions_are_rejected_not_absorbed() {
        let mut g = EntailmentGraph::new(3);
        g.assert_same(0, 1);
        assert_eq!(g.assert_different(0, 1), Assertion::Contradiction);
        g.assert_different(1, 2);
        assert_eq!(g.assert_same(0, 2), Assertion::Contradiction);
        // Rejected facts leave the closure untouched.
        assert!(g.same(0, 1));
        assert!(g.different(0, 2));
    }

    #[test]
    fn push_extends_the_universe() {
        let mut g = EntailmentGraph::new(1);
        let v = g.push();
        assert_eq!(v, 1);
        g.assert_same(0, 1);
        assert!(g.same(0, 1));
    }

    /// Random answer sequences drawn from a random ground-truth partition:
    /// the closure must agree with the partition wherever it claims
    /// knowledge, stay contradiction-free, and be transitively closed.
    fn truth_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<(usize, usize)>)> {
        (
            prop::collection::vec(0usize..4, 12),
            prop::collection::vec((0usize..12, 0usize..12), 0..60),
        )
    }

    proptest! {
        #[test]
        fn closure_is_sound_and_contradiction_free((labels, pairs) in truth_strategy()) {
            let mut g = EntailmentGraph::new(labels.len());
            for (a, b) in pairs {
                if a == b {
                    continue;
                }
                // Answer according to ground truth; consistent truth must
                // never produce a contradiction.
                let r = if labels[a] == labels[b] {
                    g.assert_same(a, b)
                } else {
                    g.assert_different(a, b)
                };
                prop_assert_ne!(r, Assertion::Contradiction);
            }
            for a in 0..labels.len() {
                for b in 0..labels.len() {
                    match g.entails(a, b) {
                        Entailment::Same { .. } => prop_assert_eq!(labels[a], labels[b]),
                        Entailment::Different { .. } => prop_assert_ne!(labels[a], labels[b]),
                        Entailment::Unknown => {}
                    }
                }
            }
            // Transitive closure: Same is an equivalence relation and
            // Different propagates across it.
            for a in 0..labels.len() {
                for b in 0..labels.len() {
                    for c in 0..labels.len() {
                        if g.same(a, b) && g.same(b, c) {
                            prop_assert!(g.same(a, c));
                        }
                        if g.same(a, b) && g.different(b, c) {
                            prop_assert!(g.different(a, c));
                        }
                    }
                }
            }
        }
    }
}
