//! Dinic's max-flow algorithm with min-cut extraction.
//!
//! Capacities are `u64`; [`INF_CAPACITY`] marks edges that must never be
//! cut (the BLUE edges of Lemma 1). After running [`Dinic::max_flow`], the
//! source side of the residual graph identifies the minimum cut; the
//! saturated edges crossing it are returned by [`Dinic::min_cut_edges`].

use std::collections::VecDeque;

/// Effectively-infinite capacity for edges that must not appear in a min
/// cut. Large enough that no sum of realistic unit capacities reaches it,
/// small enough that additions cannot overflow `u64`.
pub const INF_CAPACITY: u64 = u64::MAX / 4;

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    cap: u64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
    /// Caller-supplied label; `usize::MAX` for reverse edges.
    label: usize,
}

/// Max-flow solver over a directed graph built incrementally.
#[derive(Debug, Clone)]
pub struct Dinic {
    adj: Vec<Vec<usize>>,
    edges: Vec<FlowEdge>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// A flow network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Dinic { adj: vec![Vec::new(); n], edges: Vec::new(), level: Vec::new(), iter: Vec::new() }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge `from -> to` with the given capacity and a
    /// caller-visible label (used to map cut edges back to tasks).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64, label: usize) {
        let fwd = self.edges.len();
        self.edges.push(FlowEdge { to, cap, rev: fwd + 1, label });
        self.adj[from].push(fwd);
        self.edges.push(FlowEdge { to: from, cap: 0, rev: fwd, label: usize::MAX });
        self.adj[to].push(fwd + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level = vec![-1; self.adj.len()];
        let mut q = VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &ei in &self.adj[v] {
                let e = &self.edges[ei];
                if e.cap > 0 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    q.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: u64) -> u64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let ei = self.adj[v][self.iter[v]];
            let (to, cap) = (self.edges[ei].to, self.edges[ei].cap);
            if cap > 0 && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > 0 {
                    self.edges[ei].cap -= d;
                    let rev = self.edges[ei].rev;
                    self.edges[rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Maximum `s -> t` flow. May be called once per instance (residual
    /// capacities persist, which `min_cut_edges` relies on).
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::SELECT_MAXFLOW);
        ph.set(cdb_obsv::attr::keys::N, self.vertex_count() as u64);
        let mut flow = 0u64;
        while self.bfs(s, t) {
            self.iter = vec![0; self.adj.len()];
            loop {
                let f = self.dfs(s, t, u64::MAX);
                if f == 0 {
                    break;
                }
                flow = flow.saturating_add(f);
            }
        }
        flow
    }

    /// Labels of the saturated forward edges crossing the minimum cut, after
    /// `max_flow` has run. Edges with label `usize::MAX` (reverse edges) are
    /// never reported.
    pub fn min_cut_edges(&self, s: usize) -> Vec<usize> {
        // Vertices reachable from s in the residual graph.
        let mut vis = vec![false; self.adj.len()];
        let mut q = VecDeque::new();
        vis[s] = true;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &ei in &self.adj[v] {
                let e = &self.edges[ei];
                if e.cap > 0 && !vis[e.to] {
                    vis[e.to] = true;
                    q.push_back(e.to);
                }
            }
        }
        let mut cut = Vec::new();
        for (v, adj) in self.adj.iter().enumerate() {
            if !vis[v] {
                continue;
            }
            for &ei in adj {
                let e = &self.edges[ei];
                if e.label != usize::MAX && !vis[e.to] {
                    cut.push(e.label);
                }
            }
        }
        cut.sort_unstable();
        cut.dedup();
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_edge_flow() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 5, 0);
        assert_eq!(d.max_flow(0, 1), 5);
        assert_eq!(d.min_cut_edges(0), vec![0]);
    }

    #[test]
    fn no_path_means_zero_flow() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 5, 0);
        assert_eq!(d.max_flow(0, 2), 0);
        assert!(d.min_cut_edges(0).is_empty());
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two disjoint paths of capacity 3 and 2.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 3, 0);
        d.add_edge(1, 3, 3, 1);
        d.add_edge(0, 2, 2, 2);
        d.add_edge(2, 3, 2, 3);
        assert_eq!(d.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck_in_middle() {
        // s -> a (10), a -> b (1), b -> t (10): min cut is the middle edge.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 10, 0);
        d.add_edge(1, 2, 1, 1);
        d.add_edge(2, 3, 10, 2);
        assert_eq!(d.max_flow(0, 3), 1);
        assert_eq!(d.min_cut_edges(0), vec![1]);
    }

    #[test]
    fn infinite_edges_are_never_cut() {
        // Two parallel chains: INF-1-INF and INF-1-INF; cut must be the two
        // unit edges.
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, INF_CAPACITY, 0);
        d.add_edge(1, 2, 1, 1);
        d.add_edge(2, 5, INF_CAPACITY, 2);
        d.add_edge(0, 3, INF_CAPACITY, 3);
        d.add_edge(3, 4, 1, 4);
        d.add_edge(4, 5, INF_CAPACITY, 5);
        assert_eq!(d.max_flow(0, 5), 2);
        assert_eq!(d.min_cut_edges(0), vec![1, 4]);
    }

    #[test]
    fn wikipedia_flow_network() {
        // Known max-flow example with cross edges.
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, 16, 0);
        d.add_edge(0, 2, 13, 1);
        d.add_edge(1, 2, 10, 2);
        d.add_edge(2, 1, 4, 3);
        d.add_edge(1, 3, 12, 4);
        d.add_edge(3, 2, 9, 5);
        d.add_edge(2, 4, 14, 6);
        d.add_edge(4, 3, 7, 7);
        d.add_edge(3, 5, 20, 8);
        d.add_edge(4, 5, 4, 9);
        assert_eq!(d.max_flow(0, 5), 23);
    }

    /// Brute-force min cut by enumerating all subsets containing s but not t.
    fn brute_min_cut(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u64 {
        let mut best = u64::MAX;
        for mask in 0u32..(1 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let mut cut = 0u64;
            for &(u, v, c) in edges {
                if mask & (1 << u) != 0 && mask & (1 << v) == 0 {
                    cut = cut.saturating_add(c);
                }
            }
            best = best.min(cut);
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn max_flow_equals_brute_force_min_cut(
            edges in prop::collection::vec((0usize..6, 0usize..6, 1u64..8), 1..14),
        ) {
            let edges: Vec<(usize, usize, u64)> =
                edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            prop_assume!(!edges.is_empty());
            let mut d = Dinic::new(6);
            for (i, &(u, v, c)) in edges.iter().enumerate() {
                d.add_edge(u, v, c, i);
            }
            let flow = d.max_flow(0, 5);
            prop_assert_eq!(flow, brute_min_cut(6, &edges, 0, 5));
        }

        #[test]
        fn cut_edges_capacity_sums_to_flow(
            edges in prop::collection::vec((0usize..6, 0usize..6, 1u64..8), 1..14),
        ) {
            let edges: Vec<(usize, usize, u64)> =
                edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            prop_assume!(!edges.is_empty());
            let mut d = Dinic::new(6);
            for (i, &(u, v, c)) in edges.iter().enumerate() {
                d.add_edge(u, v, c, i);
            }
            let flow = d.max_flow(0, 5);
            let cut = d.min_cut_edges(0);
            let cut_cap: u64 = cut.iter().map(|&l| edges[l].2).sum();
            prop_assert_eq!(cut_cap, flow);
        }
    }
}
