//! Graph algorithm substrate for CDB.
//!
//! The cost-control component of CDB (Section 5.1 of the paper) reduces
//! optimal task selection with known edge colors to an *s–t min-cut*
//! (Lemma 1): BLUE-chain edges get capacity ∞, RED edges capacity 1, and the
//! RED edges crossing the minimum cut are exactly the tasks that must be
//! asked. This crate provides the max-flow/min-cut machinery (Dinic's
//! algorithm) plus union-find connected components used by the latency
//! controller.

mod dsu;
mod entail;
mod maxflow;

pub use dsu::UnionFind;
pub use entail::{Assertion, Entailment, EntailmentGraph};
pub use maxflow::{Dinic, INF_CAPACITY};

/// Connected components of an undirected graph given as an edge list over
/// vertices `0..n`. Returns a component id per vertex, with ids compacted to
/// `0..k` in order of first appearance.
pub fn connected_components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut dsu = UnionFind::new(n);
    for &(u, v) in edges {
        dsu.union(u, v);
    }
    let mut next = 0usize;
    let mut map = vec![usize::MAX; n];
    let mut out = vec![0usize; n];
    for (v, slot) in out.iter_mut().enumerate() {
        let root = dsu.find(v);
        if map[root] == usize::MAX {
            map[root] = next;
            next += 1;
        }
        *slot = map[root];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_empty_graph_are_singletons() {
        assert_eq!(connected_components(3, &[]), vec![0, 1, 2]);
    }

    #[test]
    fn components_merge_across_edges() {
        let cc = connected_components(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_eq!(cc[3], cc[4]);
        assert_ne!(cc[0], cc[3]);
    }

    #[test]
    fn component_ids_are_compact() {
        let cc = connected_components(4, &[(2, 3)]);
        let max = *cc.iter().max().unwrap();
        assert_eq!(max, 2);
    }

    #[test]
    fn zero_vertices() {
        assert!(connected_components(0, &[]).is_empty());
    }
}
