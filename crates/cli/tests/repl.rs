//! End-to-end REPL session against a live server: every command runs
//! and renders something sensible.

use cdb_cli::{parse_command, Flow, Session};
use cdb_datagen::paper_example_dataset;
use cdb_serve::ServeConfig;

const JOIN_SQL: &str = "SELECT * FROM Researcher, University \
     WHERE Researcher.affiliation CROWDJOIN University.name";

fn run(session: &mut Session, line: &str) -> (Flow, String) {
    let cmd = parse_command(line).expect("command parses");
    let mut out = Vec::new();
    let flow = session.run(&cmd, &mut out).expect("command runs");
    (flow, String::from_utf8(out).expect("utf8 output"))
}

#[test]
fn a_full_session_end_to_end() {
    let (db, truth) = paper_example_dataset();
    let server = cdb_serve::start("127.0.0.1:0", db, truth, ServeConfig::default()).expect("bind");
    let mut session = Session::new(server.addr());

    let (_, out) = run(&mut session, "catalog");
    assert!(out.contains("Researcher"), "{out}");
    assert!(out.contains("rows): "), "tables render with row counts: {out}");

    let (_, out) = run(&mut session, &format!("submit acme 10000 {JOIN_SQL}"));
    assert_eq!(out, "admitted query 0\n");
    assert_eq!(session.last_query(), Some(0));

    // `watch` with no id follows the last submitted query to completion.
    let (_, out) = run(&mut session, "watch");
    assert!(out.contains("round "), "{out}");
    assert!(out.contains("done  rounds="), "{out}");

    let (_, out) = run(&mut session, "status");
    assert!(out.contains("query 0 (acme): done"), "{out}");

    let (_, out) = run(&mut session, "budget acme");
    assert!(out.contains("tenant acme:"), "{out}");
    assert!(out.contains("completed=1"), "{out}");

    let (_, out) = run(&mut session, "stats");
    assert!(out.contains("completed=1"), "{out}");

    let (_, out) = run(&mut session, "budget ghost");
    assert!(out.contains("never submitted"), "{out}");

    let (_, out) = run(&mut session, "cancel 99");
    assert!(out.contains("no such query"), "{out}");

    // A rejection renders the typed reason instead of erroring.
    let (_, out) = run(&mut session, &format!("submit acme 1 {JOIN_SQL}"));
    assert!(out.contains("rejected: infeasible"), "{out}");

    let (flow, _) = run(&mut session, "quit");
    assert_eq!(flow, Flow::Quit);
    server.shutdown();
}
