//! `cdb-cli` — the interactive client for a running `cdb-serve`.
//!
//! The binary is a line-oriented REPL (plus a one-shot mode: pass a
//! command on the command line and it runs once and exits). This library
//! holds the command grammar and the execution/rendering logic so both
//! are unit-testable without a terminal.
//!
//! ```text
//! cdb> submit acme 10000 SELECT * FROM Researcher, University
//!      WHERE Researcher.affiliation CROWDJOIN University.name
//! admitted query 0
//! cdb> watch 0
//! round 1  +4 bindings: [0,9] [1,10] ...
//! done  rounds=1 tasks=17 assignments=85 bindings=4 refund=9830¢
//! cdb> budget acme
//! tenant acme: 170/100000¢ committed, 99830¢ available ...
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::io::{self, Write};

use cdb_obsv::json::Json;
use cdb_serve::{Client, StreamEvent, Submit, SubmitOutcome};

/// One parsed REPL command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `submit <tenant> <budget_cents> <sql...>` — submit CQL, print the
    /// admission decision.
    Submit {
        /// Tenant to bill.
        tenant: String,
        /// Per-query budget in cents.
        budget_cents: u64,
        /// The CQL text (the rest of the line).
        sql: String,
    },
    /// `watch [id]` — stream a query's bindings live (defaults to the
    /// last submitted query).
    Watch {
        /// Query id; `None` = last submitted.
        query: Option<u64>,
    },
    /// `cancel <id>` — cancel a query (refunds its unspent budget).
    Cancel {
        /// Query id.
        query: u64,
    },
    /// `status [id]` — one query's lifecycle state.
    Status {
        /// Query id; `None` = last submitted.
        query: Option<u64>,
    },
    /// `budget <tenant>` — the tenant's wallet and envelope.
    Budget {
        /// Tenant name.
        tenant: String,
    },
    /// `stats` — server-wide counters.
    Stats,
    /// `catalog` — the served tables and their crowd columns.
    Catalog,
    /// `help` — the command list.
    Help,
    /// `quit` / `exit` — leave the REPL.
    Quit,
}

/// The help text the REPL prints for `help` and unknown commands.
pub const HELP: &str = "commands:
  submit <tenant> <budget_cents> <sql...>  submit CQL, print the admission decision
  watch [id]                               stream bindings live (default: last submitted)
  cancel <id>                              cancel a query, refunding unspent budget
  status [id]                              one query's state (default: last submitted)
  budget <tenant>                          tenant wallet: committed/available/spent
  stats                                    server-wide counters
  catalog                                  served tables and crowd columns
  help                                     this text
  quit                                     exit
";

/// Parse one REPL line. Empty lines parse to `Help` (the REPL skips
/// them before calling this); errors are human-readable.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let mut words = line.split_whitespace();
    let Some(verb) = words.next() else { return Ok(Command::Help) };
    let opt_id = |w: &mut dyn Iterator<Item = &str>| -> Result<Option<u64>, String> {
        w.next().map(|s| s.parse().map_err(|_| format!("not a query id: {s}"))).transpose()
    };
    match verb {
        "submit" => {
            let tenant = words.next().ok_or("usage: submit <tenant> <budget_cents> <sql...>")?;
            let budget: &str =
                words.next().ok_or("usage: submit <tenant> <budget_cents> <sql...>")?;
            let budget_cents =
                budget.parse().map_err(|_| format!("not a budget in cents: {budget}"))?;
            let sql_start = line
                .find(budget)
                .map(|i| i + budget.len())
                .ok_or("usage: submit <tenant> <budget_cents> <sql...>")?;
            let sql = line[sql_start..].trim().to_string();
            if sql.is_empty() {
                return Err("missing SQL text; see docs/CQL.md".into());
            }
            Ok(Command::Submit { tenant: tenant.to_string(), budget_cents, sql })
        }
        "watch" => Ok(Command::Watch { query: opt_id(&mut words)? }),
        "cancel" => {
            let id = opt_id(&mut words)?.ok_or("usage: cancel <id>")?;
            Ok(Command::Cancel { query: id })
        }
        "status" => Ok(Command::Status { query: opt_id(&mut words)? }),
        "budget" => {
            let tenant = words.next().ok_or("usage: budget <tenant>")?;
            Ok(Command::Budget { tenant: tenant.to_string() })
        }
        "stats" => Ok(Command::Stats),
        "catalog" => Ok(Command::Catalog),
        "help" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        other => Err(format!("unknown command: {other} (try `help`)")),
    }
}

/// Render one stream event as a human-readable line.
pub fn render_event(e: &StreamEvent) -> String {
    fn bindings(bs: &[Vec<u64>]) -> String {
        bs.iter()
            .map(|b| {
                let ids: Vec<String> = b.iter().map(|n| n.to_string()).collect();
                format!("[{}]", ids.join(","))
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
    match e {
        StreamEvent::Round { round, new } => {
            format!("round {round}  +{} bindings: {}", new.len(), bindings(new))
        }
        StreamEvent::Retract { bindings: bs } => {
            format!("retract  -{} bindings: {}", bs.len(), bindings(bs))
        }
        StreamEvent::Done { rounds, tasks, assignments, bindings: n, cancelled, refund_cents } => {
            let label = if *cancelled { "cancelled" } else { "done" };
            format!(
                "{label}  rounds={rounds} tasks={tasks} assignments={assignments} \
                 bindings={n} refund={refund_cents}\u{a2}"
            )
        }
        StreamEvent::Error { message } => format!("error  {message}"),
    }
}

/// Render a query status JSON object as one line.
pub fn render_status(j: &Json) -> String {
    let num = |k: &str| j.get(k).and_then(Json::as_num).unwrap_or_default();
    let mut s = format!(
        "query {} ({}): {}  streamed={}",
        num("query"),
        j.get("tenant").and_then(Json::as_str).unwrap_or("?"),
        j.get("state").and_then(Json::as_str).unwrap_or("?"),
        num("bindings_streamed"),
    );
    if let Some(est) = j.get("estimate") {
        s.push_str(&format!(
            "  est: {} tasks / {} rounds / {}\u{a2}",
            est.get("tasks_upper").and_then(Json::as_num).unwrap_or_default(),
            est.get("rounds_upper").and_then(Json::as_num).unwrap_or_default(),
            est.get("cost_cents_upper").and_then(Json::as_num).unwrap_or_default(),
        ));
    }
    if let Some(ms) = j.get("first_binding_ms").and_then(Json::as_num) {
        s.push_str(&format!("  first-binding={ms:.1}ms"));
    }
    s
}

/// Render a tenant budget JSON object as one line.
pub fn render_budget(j: &Json) -> String {
    let num = |k: &str| j.get(k).and_then(Json::as_num).unwrap_or_default();
    format!(
        "tenant {}: {}/{}\u{a2} committed, {}\u{a2} available  \
         active={} queued={}  spent={}\u{a2} refunded={}\u{a2}  \
         completed={} failed={} cancelled={} rejected={}",
        j.get("tenant").and_then(Json::as_str).unwrap_or("?"),
        num("committed_cents"),
        num("budget_cents"),
        num("available_cents"),
        num("active"),
        num("queued"),
        num("spent_cents"),
        num("refunded_cents"),
        num("completed"),
        num("failed"),
        num("cancelled"),
        num("rejected"),
    )
}

/// Render the `/catalog` response as one line per table.
pub fn render_catalog(j: &Json) -> String {
    let Some(tables) = j.get("tables").and_then(Json::as_arr) else {
        return "no tables".into();
    };
    tables
        .iter()
        .map(|t| {
            let cols = t
                .get("columns")
                .and_then(Json::as_arr)
                .map(|cs| {
                    cs.iter()
                        .map(|c| {
                            let name = c.get("name").and_then(Json::as_str).unwrap_or("?");
                            if matches!(c.get("crowd"), Some(Json::Bool(true))) {
                                format!("{name}*")
                            } else {
                                name.to_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            format!(
                "{} ({} rows): {}",
                t.get("name").and_then(Json::as_str).unwrap_or("?"),
                t.get("rows").and_then(Json::as_num).unwrap_or_default(),
                cols,
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The REPL session: a client plus the last-submitted query id.
pub struct Session {
    client: Client,
    last_query: Option<u64>,
}

/// What the REPL loop should do after a command.
#[derive(Debug, PartialEq, Eq)]
pub enum Flow {
    /// Read the next command.
    Continue,
    /// Exit the REPL.
    Quit,
}

impl Session {
    /// A session against the given server.
    pub fn new(addr: std::net::SocketAddr) -> Session {
        Session { client: Client::new(addr), last_query: None }
    }

    /// The most recently submitted query id, if any.
    pub fn last_query(&self) -> Option<u64> {
        self.last_query
    }

    fn pick(&self, query: Option<u64>) -> Result<u64, String> {
        query.or(self.last_query).ok_or_else(|| "no query submitted yet; pass an id".to_string())
    }

    /// Run one command, writing human-readable output to `out`. Network
    /// errors surface as `Err` (the REPL prints and continues);
    /// user errors (bad id, rejection) are printed output, not errors.
    pub fn run(&mut self, cmd: &Command, out: &mut dyn Write) -> io::Result<Flow> {
        match cmd {
            Command::Submit { tenant, budget_cents, sql } => {
                let submit = Submit {
                    tenant: tenant.clone(),
                    sql: sql.clone(),
                    budget_cents: *budget_cents,
                    deadline_rounds: None,
                };
                match self.client.submit(&submit)? {
                    SubmitOutcome::Admitted { query } => {
                        self.last_query = Some(query);
                        writeln!(out, "admitted query {query}")?;
                    }
                    SubmitOutcome::Queued { query, position } => {
                        self.last_query = Some(query);
                        writeln!(out, "queued query {query} (position {position})")?;
                    }
                    SubmitOutcome::Rejected { reason, detail } => {
                        writeln!(out, "rejected: {reason}  {detail}")?;
                    }
                }
            }
            Command::Watch { query } => match self.pick(*query) {
                Ok(id) => {
                    let events = self.client.stream_events(id)?;
                    for e in &events {
                        writeln!(out, "{}", render_event(e))?;
                    }
                }
                Err(e) => writeln!(out, "{e}")?,
            },
            Command::Cancel { query } => {
                if self.client.cancel(*query)? {
                    writeln!(out, "cancelled query {query}")?;
                } else {
                    writeln!(out, "no such query: {query}")?;
                }
            }
            Command::Status { query } => match self.pick(*query) {
                Ok(id) => {
                    let j = self.client.query_status(id)?;
                    writeln!(out, "{}", render_status(&j))?;
                }
                Err(e) => writeln!(out, "{e}")?,
            },
            Command::Budget { tenant } => match self.client.tenant_status(tenant)? {
                Some(j) => writeln!(out, "{}", render_budget(&j))?,
                None => writeln!(out, "tenant {tenant} has never submitted")?,
            },
            Command::Stats => {
                let j = self.client.stats()?;
                let num = |k: &str| j.get(k).and_then(Json::as_num).unwrap_or_default();
                writeln!(
                    out,
                    "inflight={} (peak {})  submitted={} completed={} failed={} \
                     cancelled={} rejected={}  exec_threads={}",
                    num("inflight"),
                    num("peak_inflight"),
                    num("submitted"),
                    num("completed"),
                    num("failed"),
                    num("cancelled"),
                    num("rejected"),
                    num("exec_threads"),
                )?;
            }
            Command::Catalog => {
                let j = self.client.catalog()?;
                writeln!(out, "{}", render_catalog(&j))?;
            }
            Command::Help => write!(out, "{HELP}")?,
            Command::Quit => return Ok(Flow::Quit),
        }
        Ok(Flow::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_whole_grammar() {
        assert_eq!(
            parse_command("submit acme 500 SELECT * FROM T WHERE a CROWDEQUAL 'x'").unwrap(),
            Command::Submit {
                tenant: "acme".into(),
                budget_cents: 500,
                sql: "SELECT * FROM T WHERE a CROWDEQUAL 'x'".into(),
            },
        );
        assert_eq!(parse_command("watch").unwrap(), Command::Watch { query: None });
        assert_eq!(parse_command("watch 7").unwrap(), Command::Watch { query: Some(7) });
        assert_eq!(parse_command("cancel 3").unwrap(), Command::Cancel { query: 3 });
        assert_eq!(parse_command("status").unwrap(), Command::Status { query: None });
        assert_eq!(
            parse_command("budget acme").unwrap(),
            Command::Budget { tenant: "acme".into() }
        );
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("catalog").unwrap(), Command::Catalog);
        assert_eq!(parse_command("exit").unwrap(), Command::Quit);
        assert!(parse_command("cancel").is_err());
        assert!(parse_command("submit acme notanumber SELECT").is_err());
        assert!(parse_command("frobnicate").is_err());
    }

    #[test]
    fn renders_events_compactly() {
        let line = render_event(&StreamEvent::Round { round: 2, new: vec![vec![1, 5]] });
        assert_eq!(line, "round 2  +1 bindings: [1,5]");
        let line = render_event(&StreamEvent::Done {
            rounds: 3,
            tasks: 17,
            assignments: 85,
            bindings: 4,
            cancelled: false,
            refund_cents: 9830,
        });
        assert!(line.starts_with("done  rounds=3"), "{line}");
        assert!(line.contains("refund=9830"), "{line}");
        let line = render_event(&StreamEvent::Error { message: "boom".into() });
        assert_eq!(line, "error  boom");
    }

    #[test]
    fn renders_budget_and_status() {
        let j = cdb_obsv::json::parse(
            "{\"tenant\":\"acme\",\"budget_cents\":1000,\"committed_cents\":170,\
             \"available_cents\":830,\"active\":1,\"queued\":0,\"spent_cents\":0,\
             \"refunded_cents\":0,\"completed\":0,\"failed\":0,\"cancelled\":0,\"rejected\":0}",
        )
        .unwrap();
        let line = render_budget(&j);
        assert!(line.contains("tenant acme: 170/1000"), "{line}");
        let j = cdb_obsv::json::parse(
            "{\"query\":7,\"tenant\":\"acme\",\"state\":\"running\",\"done\":false,\
             \"bindings_streamed\":2,\"estimate\":{\"tasks_upper\":17,\"rounds_upper\":17,\
             \"cost_cents_upper\":170}}",
        )
        .unwrap();
        let line = render_status(&j);
        assert!(line.contains("query 7 (acme): running"), "{line}");
        assert!(line.contains("est: 17 tasks"), "{line}");
    }
}
