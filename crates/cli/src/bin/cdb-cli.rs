//! The `cdb-cli` binary: an interactive REPL (or one-shot command) for a
//! running `cdb-serve`.
//!
//! ```text
//! cdb-cli [--addr HOST:PORT] [command...]
//! ```
//!
//! With no command it starts a REPL (`cdb>` prompt, one command per
//! line — see `help`). With a command it runs that once and exits with a
//! non-zero status on network errors, e.g.:
//!
//! ```text
//! cdb-cli --addr 127.0.0.1:8744 submit acme 10000 \
//!     "SELECT * FROM Researcher, University \
//!      WHERE Researcher.affiliation CROWDJOIN University.name"
//! ```

#![deny(missing_docs)]

use std::io::{BufRead, Write};

use cdb_cli::{parse_command, Flow, Session, HELP};

fn main() {
    let mut addr = "127.0.0.1:8744".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().expect("--addr needs a value"),
            "--help" | "-h" => {
                print!("cdb-cli [--addr HOST:PORT] [command...]\n\n{HELP}");
                return;
            }
            _ => {
                rest.push(a);
                rest.extend(it);
                break;
            }
        }
    }
    let addr: std::net::SocketAddr = addr.parse().expect("--addr must be HOST:PORT");
    let mut session = Session::new(addr);
    let stdout = std::io::stdout();

    // One-shot mode: the rest of argv is a single command.
    if !rest.is_empty() {
        let line = rest.join(" ");
        let cmd = match parse_command(&line) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = session.run(&cmd, &mut stdout.lock()) {
            eprintln!("error talking to {addr}: {e}");
            std::process::exit(1);
        }
        return;
    }

    // REPL mode.
    eprintln!("connected to {addr} — `help` lists commands, `quit` exits");
    let stdin = std::io::stdin();
    loop {
        eprint!("cdb> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                return;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let cmd = match parse_command(&line) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                continue;
            }
        };
        match session.run(&cmd, &mut stdout.lock()) {
            Ok(Flow::Continue) => {}
            Ok(Flow::Quit) => return,
            Err(e) => eprintln!("error talking to {addr}: {e}"),
        }
    }
}
