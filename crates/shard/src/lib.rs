//! `cdb-shard` — component-sharded scale-out execution.
//!
//! The tuple graph of a crowd query decomposes into *connected
//! components*: candidate answers are connected substructures, and
//! transitive inference never crosses a component boundary, so the
//! query's answer set is exactly the disjoint union of its components'
//! answer sets. That independence is the scale-out seam this crate
//! exploits:
//!
//! - [`partition`](partition::partition) splits each query's graph into
//!   components with deterministic ids (ascending minimum node id), and
//!   [`verify_partition`] re-derives the
//!   invariants — every edge in exactly one component, no node overlap,
//!   internal connectivity, canonical order — as a typed violation the
//!   simulation's sabotage modes must trip.
//! - [`ShardExecutor`] places units (one per
//!   component) across worker shards with deterministic LPT placement,
//!   streams components through a byte-accounted
//!   [`Arena`] under a plan-time ceiling
//!   ([`ShardError::ComponentTooLarge`](memory::ShardError)), and runs
//!   each unit with randomness keyed purely by `(query, component)` —
//!   so an N-shard run is byte-identical to the 1-shard oracle at any
//!   thread count.
//! - The [`merge`] layer reassembles per-component bindings in
//!   deterministic component-id order and folds shard-local metrics
//!   collectors into one fleet-wide snapshot by field-wise sum.
//! - The [`Coordinator`] layers `cdb-sched`'s
//!   admission envelope and DRR fair-share across shards, packing tasks
//!   from units on different shards into shared HITs with cents-exact
//!   attribution.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod executor;
pub mod memory;
pub mod merge;
pub mod partition;

pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorReport, ShardSubmission};
pub use executor::{
    all_bindings, unit_seed, ShardConfig, ShardExecutor, ShardReport, ShardStats, UnitOutcome,
    SHARD_STREAM,
};
pub use memory::{component_bytes, Arena, MemoryConfig, ShardError};
pub use merge::{add_snapshots, sum_snapshots, zero_snapshot, ShardQueryResult};
pub use partition::{
    component_job, partition, verify_partition, Component, Partition, PartitionViolation,
};
