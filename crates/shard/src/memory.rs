//! Memory-bounded execution: a deterministic byte estimate per component,
//! a per-shard arena that tracks live bytes, and the typed error a
//! too-large component fails with *before* any allocation happens —
//! never an OOM kill and never a hang.

use std::sync::atomic::{AtomicU64, Ordering};

use cdb_core::QueryGraph;

use crate::partition::Component;

/// Fixed per-node bookkeeping cost of a materialized sub-graph, in bytes:
/// the node struct (part, tuple, label header, adjacency header, support
/// header) plus its slot in the part's node list.
const NODE_OVERHEAD: u64 = 96;
/// Fixed per-edge bookkeeping cost: the edge struct (endpoints, predicate,
/// weight, color) plus two adjacency entries, two support slots, and the
/// change-log entry.
const EDGE_OVERHEAD: u64 = 72;
/// Per-edge cost of the runtime's side state (truth map entry, selection
/// state, pending-task bookkeeping).
const EDGE_RUNTIME: u64 = 64;

/// Deterministic estimate of the bytes a materialized component costs:
/// graph structs plus label payloads plus the runtime's per-edge state.
/// An *estimate* — the ceiling gates on it, so the bound is enforced on
/// the model, not on the allocator — but a monotone one: more nodes,
/// edges, or label bytes never estimate smaller.
pub fn component_bytes(g: &QueryGraph, comp: &Component) -> u64 {
    let label_bytes: u64 = comp.nodes.iter().map(|&n| g.node_label(n).len() as u64).sum();
    comp.nodes.len() as u64 * NODE_OVERHEAD
        + comp.edges.len() as u64 * (EDGE_OVERHEAD + EDGE_RUNTIME)
        + label_bytes
}

/// Memory policy for sharded execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Per-component byte ceiling. A component estimated above it fails
    /// the whole run with [`ShardError::ComponentTooLarge`] at *plan*
    /// time, before anything is materialized. `None` disables the gate.
    pub ceiling_bytes: Option<u64>,
    /// Stream components through shards: materialize each component's
    /// sub-graph when it is dequeued and drop it as soon as it finishes,
    /// so a shard's peak is its largest in-flight component, not its
    /// whole assignment. `false` materializes every assigned component up
    /// front (the whole-graph baseline memory profile).
    pub streaming: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig { ceiling_bytes: None, streaming: true }
    }
}

/// Typed failures of the sharded execution layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A single connected component's estimated footprint exceeds the
    /// per-shard memory ceiling. Components are atomic work units — one
    /// that cannot fit can never run under this config, so the run fails
    /// up front with the evidence instead of OOMing mid-flight.
    ComponentTooLarge {
        /// The query whose graph owns the component.
        query: u64,
        /// The component id within that query's partition.
        component: usize,
        /// The component's estimated footprint, in bytes.
        bytes: u64,
        /// The configured ceiling, in bytes.
        ceiling: u64,
    },
    /// The configuration is unusable (zero shards).
    NoShards,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ComponentTooLarge { query, component, bytes, ceiling } => write!(
                f,
                "query {query} component {component} needs ~{bytes} bytes, over the \
                 {ceiling}-byte per-shard ceiling"
            ),
            ShardError::NoShards => write!(f, "shard count must be at least 1"),
        }
    }
}

impl std::error::Error for ShardError {}

/// A shard's graph arena: tracks the bytes of live (materialized)
/// components and the high-water mark. Pure accounting over the
/// [`component_bytes`] estimate — the enforcement point is the plan-time
/// ceiling, this records what streaming actually kept resident.
#[derive(Debug, Default)]
pub struct Arena {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Record `bytes` becoming live and update the high-water mark.
    pub fn acquire(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `bytes` being dropped.
    pub fn release(&self, bytes: u64) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// The high-water mark, in bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_tracks_the_high_water_mark() {
        let a = Arena::new();
        a.acquire(100);
        a.acquire(50);
        a.release(100);
        a.acquire(20);
        assert_eq!(a.peak(), 150);
    }

    #[test]
    fn estimate_is_monotone_in_size() {
        use cdb_core::model::{NodeId, PartKind};
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let p = g.add_predicate(a, b, true, "A~B");
        let x = g.add_node(a, None, "x".to_string());
        let y = g.add_node(b, None, "y".to_string());
        let e = g.add_edge(x, y, p, 0.5);
        let one = crate::partition::Component { id: 0, nodes: vec![x], edges: vec![] };
        let two = crate::partition::Component { id: 0, nodes: vec![x, y], edges: vec![e] };
        assert!(component_bytes(&g, &two) > component_bytes(&g, &one));
        let _ = NodeId(0);
    }
}
