//! The shard executor: place execution units (one per connected
//! component) onto worker shards, run the shards concurrently, and merge
//! outcomes back in deterministic `(query, component)` order.
//!
//! Determinism: a unit's id is `stream_key(0x5AAD, [query, component])`,
//! and [`cdb_runtime::execute_query`] keys *all* of a job's randomness
//! off that id — so a unit's outcome is a pure function of
//! `(runtime config, unit job, reuse snapshot)`. Placement, shard count
//! and thread count decide only *where and when* a unit runs, never what
//! it computes. Consequently an N-shard run is byte-identical to the
//! 1-shard oracle: same bindings, same merged metrics JSON.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cdb_core::model::NodeId;
use cdb_core::ReuseSession;
use cdb_crowd::{stream_key, SimTime};
use cdb_runtime::{
    execute_query, settled_facts, MetricsSnapshot, QueryJob, QueryResult, RuntimeConfig,
    RuntimeError, RuntimeMetrics,
};

use crate::memory::{component_bytes, Arena, MemoryConfig, ShardError};
use crate::merge::{merge_query, remap_bindings, sum_snapshots, ShardQueryResult};
use crate::partition::{partition, Partition};

/// A finished unit's raw outcome plus the node-id map back into the
/// original graph, parked in its slot until the merge pass collects it.
type UnitSlot = Mutex<Option<(Result<QueryResult, RuntimeError>, Vec<NodeId>)>>;

/// Stream-key salt for unit ids: `unit = stream_key(SHARD_STREAM,
/// [query, component])`. Distinct from every other salt in the workspace
/// so sharded units never collide with whole-query seed streams.
pub const SHARD_STREAM: u64 = 0x5AAD;

/// The deterministic id of one execution unit — query `query`'s
/// component `component`. Used as the unit's `QueryJob::id`, which in
/// turn keys its platform, executor and fault streams.
pub fn unit_seed(query: u64, component: usize) -> u64 {
    stream_key(SHARD_STREAM, &[query, component as u64])
}

/// Sharded-execution configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker shards. Each shard runs `runtime.threads` worker threads
    /// over its own unit queue, with its own metrics collector and arena.
    pub shards: usize,
    /// Per-shard runtime configuration (seed, market, workers, faults,
    /// reuse, settle hook). The `threads` field is the *intra-shard*
    /// thread count.
    pub runtime: RuntimeConfig,
    /// Memory policy: plan-time component ceiling and streaming mode.
    pub memory: MemoryConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            runtime: RuntimeConfig::default(),
            memory: MemoryConfig::default(),
        }
    }
}

/// One execution unit's outcome.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// The owning query.
    pub query: u64,
    /// The component id within the query's partition.
    pub component: usize,
    /// The deterministic unit seed ([`unit_seed`]).
    pub unit: u64,
    /// The shard the unit ran on (telemetry — does not affect results).
    pub shard: usize,
    /// The unit's estimated footprint, in bytes.
    pub bytes: u64,
    /// The unit's result with bindings remapped to *global* node ids.
    pub result: Result<QueryResult, RuntimeError>,
}

/// Per-shard execution statistics.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Units the placement assigned to this shard.
    pub units: usize,
    /// Total estimated bytes assigned.
    pub assigned_bytes: u64,
    /// Arena high-water mark: bytes of simultaneously materialized
    /// components. Deterministic at `threads == 1`; telemetry at higher
    /// thread counts (depends on overlap timing).
    pub peak_bytes: u64,
    /// The shard's virtual makespan: the sum of its units' simulated
    /// crowd time (units on one shard share its worker capacity).
    pub virtual_ms: SimTime,
    /// The shard-local metrics collector's snapshot.
    pub metrics: MetricsSnapshot,
}

/// The merged report of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Per-query merged results, in query-id order.
    pub results: Vec<(u64, Result<ShardQueryResult, RuntimeError>)>,
    /// Every execution unit's outcome, in `(query, component)` order.
    pub units: Vec<UnitOutcome>,
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Fleet-wide metrics: the field-wise sum of the shard-local
    /// snapshots — byte-identical to a single shared collector.
    pub metrics: MetricsSnapshot,
    /// Host wall-clock for the whole run (nondeterministic; telemetry).
    pub wall: Duration,
}

impl ShardReport {
    /// Queries that completed.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// Queries that failed.
    pub fn failed_count(&self) -> usize {
        self.results.len() - self.ok_count()
    }

    /// Canonical text rendering of every query's answer set — the same
    /// format as [`cdb_runtime::RuntimeReport::bindings_text`], so the
    /// sharded path can be compared byte-for-byte against the oracle.
    pub fn bindings_text(&self) -> String {
        let mut out = String::new();
        for (id, r) in &self.results {
            match r {
                Ok(q) => {
                    let rows: Vec<String> = q
                        .bindings
                        .iter()
                        .map(|b| b.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join("."))
                        .collect();
                    out.push_str(&format!("q{} answers=[{}]\n", id, rows.join("|")));
                }
                Err(e) => out.push_str(&format!("q{} error={}\n", id, e)),
            }
        }
        out
    }

    /// End-to-end virtual makespan: shards run concurrently, so the run
    /// finishes when the slowest shard does. This is the deterministic
    /// scale-out signal (host wall-clock on a small machine is not).
    pub fn virtual_makespan(&self) -> SimTime {
        self.shards.iter().map(|s| s.virtual_ms).max().unwrap_or(0)
    }

    /// The largest per-shard arena high-water mark.
    pub fn peak_bytes_max(&self) -> u64 {
        self.shards.iter().map(|s| s.peak_bytes).max().unwrap_or(0)
    }
}

/// One planned execution unit.
#[derive(Debug, Clone)]
struct UnitPlan {
    query: u64,
    component: usize,
    unit: u64,
    bytes: u64,
    job_idx: usize,
}

/// Deterministic LPT (longest-processing-time) placement: units sorted
/// by estimated bytes descending — ties broken by `(query, component)`
/// ascending — each go to the currently least-loaded shard, ties to the
/// lowest index. Returns per-shard lists of plan indices.
fn place(plans: &[UnitPlan], shards: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by(|&a, &b| {
        plans[b]
            .bytes
            .cmp(&plans[a].bytes)
            .then(plans[a].query.cmp(&plans[b].query))
            .then(plans[a].component.cmp(&plans[b].component))
    });
    let mut load = vec![0u64; shards];
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for pi in order {
        let s = (0..shards).min_by_key(|&s| (load[s], s)).expect("shards >= 1");
        load[s] += plans[pi].bytes;
        assigned[s].push(pi);
    }
    assigned
}

/// Runs query fleets sharded by connected component.
pub struct ShardExecutor {
    cfg: ShardConfig,
}

impl ShardExecutor {
    /// Build an executor from its configuration.
    pub fn new(cfg: ShardConfig) -> Self {
        ShardExecutor { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Plan, place and run every job; merge per-component outcomes back
    /// into per-query results in query-id order.
    ///
    /// Fails at *plan* time — before anything is materialized — if a
    /// component's estimated footprint exceeds the memory ceiling, or if
    /// the config has zero shards.
    pub fn run(&self, mut jobs: Vec<QueryJob>) -> Result<ShardReport, ShardError> {
        let start = Instant::now();
        if self.cfg.shards == 0 {
            return Err(ShardError::NoShards);
        }
        jobs.sort_by_key(|j| j.id);
        // Plan: partition each query, estimate each component, gate on
        // the ceiling. Plans come out in (query, component) order.
        let parts: Vec<Partition> = jobs.iter().map(|j| partition(&j.graph)).collect();
        let mut plans: Vec<UnitPlan> = Vec::new();
        for (ji, (job, part)) in jobs.iter().zip(&parts).enumerate() {
            for comp in &part.components {
                let bytes = component_bytes(&job.graph, comp);
                if let Some(ceiling) = self.cfg.memory.ceiling_bytes {
                    if bytes > ceiling {
                        return Err(ShardError::ComponentTooLarge {
                            query: job.id,
                            component: comp.id,
                            bytes,
                            ceiling,
                        });
                    }
                }
                plans.push(UnitPlan {
                    query: job.id,
                    component: comp.id,
                    unit: unit_seed(job.id, comp.id),
                    bytes,
                    job_idx: ji,
                });
            }
        }
        let assigned = place(&plans, self.cfg.shards);
        let mut shard_of = vec![0usize; plans.len()];
        for (s, list) in assigned.iter().enumerate() {
            for &pi in list {
                shard_of[pi] = s;
            }
        }
        // Reuse: snapshot the shared cache ONCE per unit before anything
        // runs — every unit resolves against the same frozen knowledge,
        // exactly like RuntimeExecutor's per-query sessions.
        let sessions: Vec<Option<Arc<Mutex<ReuseSession>>>> = match &self.cfg.runtime.reuse {
            Some(cache) => {
                plans.iter().map(|_| Some(Arc::new(Mutex::new(cache.snapshot())))).collect()
            }
            None => plans.iter().map(|_| None).collect(),
        };
        // Non-streaming: materialize every unit's sub-graph up front —
        // the whole-graph baseline memory profile.
        let premade: Option<Vec<(QueryJob, Vec<NodeId>)>> = if self.cfg.memory.streaming {
            None
        } else {
            Some(
                plans
                    .iter()
                    .map(|p| {
                        let job = &jobs[p.job_idx];
                        let comp = &parts[p.job_idx].components[p.component];
                        crate::partition::component_job(&job.graph, &job.truth, comp, p.unit)
                    })
                    .collect(),
            )
        };
        let arenas: Vec<Arena> = (0..self.cfg.shards).map(|_| Arena::new()).collect();
        if premade.is_some() {
            for (pi, p) in plans.iter().enumerate() {
                arenas[shard_of[pi]].acquire(p.bytes);
            }
        }
        let shard_metrics: Vec<Arc<RuntimeMetrics>> =
            (0..self.cfg.shards).map(|_| Arc::new(RuntimeMetrics::new())).collect();
        let cursors: Vec<AtomicUsize> = (0..self.cfg.shards).map(|_| AtomicUsize::new(0)).collect();
        let slots: Vec<UnitSlot> = plans.iter().map(|_| Mutex::new(None)).collect();
        let cfg = Arc::new(self.cfg.runtime.clone());
        let threads = self.cfg.runtime.threads.max(1);
        let streaming = self.cfg.memory.streaming;
        std::thread::scope(|scope| {
            for (s, list) in assigned.iter().enumerate() {
                for _ in 0..threads {
                    let cfg = Arc::clone(&cfg);
                    let metrics = Arc::clone(&shard_metrics[s]);
                    let arena = &arenas[s];
                    let cursor = &cursors[s];
                    let plans = &plans;
                    let jobs = &jobs;
                    let parts = &parts;
                    let sessions = &sessions;
                    let premade = &premade;
                    let slots = &slots;
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::SeqCst);
                        let Some(&pi) = list.get(i) else { break };
                        let p = &plans[pi];
                        let (unit_job, to_global) = match premade {
                            Some(pre) => pre[pi].clone(),
                            None => {
                                let job = &jobs[p.job_idx];
                                let comp = &parts[p.job_idx].components[p.component];
                                crate::partition::component_job(
                                    &job.graph, &job.truth, comp, p.unit,
                                )
                            }
                        };
                        if streaming {
                            arena.acquire(p.bytes);
                        }
                        let session = sessions[pi].as_ref().map(Arc::clone);
                        let (_, result) = execute_query(&cfg, &metrics, unit_job, session);
                        if streaming {
                            arena.release(p.bytes);
                        }
                        *slots[pi].lock().expect("unit slot poisoned") = Some((result, to_global));
                    });
                }
            }
        });
        // Absorb reuse sessions in (query, component) order after every
        // shard joins — the same first-writer-wins, settle-before-absorb
        // protocol as RuntimeExecutor, keyed by unit seed.
        let mut outcomes: Vec<UnitOutcome> = Vec::with_capacity(plans.len());
        for (pi, p) in plans.iter().enumerate() {
            let (result, to_global) =
                slots[pi].lock().expect("unit slot poisoned").take().expect("every unit reports");
            let result = result.map(|mut q| {
                q.bindings = remap_bindings(&q.bindings, &to_global);
                q
            });
            if result.is_ok() {
                if let (Some(cache), Some(session)) = (&self.cfg.runtime.reuse, &sessions[pi]) {
                    let session = session.lock().expect("reuse session poisoned");
                    let settled = match &self.cfg.runtime.settle {
                        Some(hook) => {
                            let facts = settled_facts(&self.cfg.runtime, &session);
                            facts.is_empty() || hook.settle(p.unit, &facts).is_ok()
                        }
                        None => true,
                    };
                    if settled {
                        cache.absorb(&session);
                    }
                }
            }
            outcomes.push(UnitOutcome {
                query: p.query,
                component: p.component,
                unit: p.unit,
                shard: shard_of[pi],
                bytes: p.bytes,
                result,
            });
        }
        // Merge per query, in query-id order. A query whose graph
        // partitioned into zero components (no edges, no nodes that
        // could bind) merges to the empty answer set.
        let mut results: Vec<(u64, Result<ShardQueryResult, RuntimeError>)> = Vec::new();
        for job in &jobs {
            let per: Vec<(usize, &Result<QueryResult, RuntimeError>)> = outcomes
                .iter()
                .filter(|o| o.query == job.id)
                .map(|o| (o.component, &o.result))
                .collect();
            results.push((job.id, merge_query(job.id, &per)));
        }
        let shards: Vec<ShardStats> = (0..self.cfg.shards)
            .map(|s| {
                let mine: Vec<&UnitOutcome> = outcomes.iter().filter(|o| o.shard == s).collect();
                ShardStats {
                    shard: s,
                    units: mine.len(),
                    assigned_bytes: mine.iter().map(|o| o.bytes).sum(),
                    peak_bytes: arenas[s].peak(),
                    virtual_ms: mine
                        .iter()
                        .map(|o| o.result.as_ref().map(|q| q.virtual_ms).unwrap_or(0))
                        .sum(),
                    metrics: shard_metrics[s].snapshot(),
                }
            })
            .collect();
        let metrics = sum_snapshots(shards.iter().map(|s| &s.metrics));
        Ok(ShardReport { results, units: outcomes, shards, metrics, wall: start.elapsed() })
    }
}

/// The union of every successful query's answer bindings — convenience
/// for equality assertions in tests.
pub fn all_bindings(report: &ShardReport) -> BTreeSet<(u64, Vec<NodeId>)> {
    let mut out = BTreeSet::new();
    for (id, r) in &report.results {
        if let Ok(q) = r {
            for b in &q.bindings {
                out.insert((*id, b.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::executor::EdgeTruth;
    use cdb_core::model::PartKind;
    use cdb_core::QueryGraph;

    /// Two independent joins in one graph: `a_i ~ b_i` pairs (2 comps)
    /// with known truth.
    fn two_component_job(id: u64) -> QueryJob {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let p = g.add_predicate(a, b, true, "A~B");
        let mut truth = EdgeTruth::new();
        for i in 0..2 {
            let x = g.add_node(a, None, format!("a{i}"));
            let y = g.add_node(b, None, format!("b{i}"));
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, true);
        }
        QueryJob { id, graph: g, truth }
    }

    #[test]
    fn placement_is_deterministic_and_balanced() {
        let plans: Vec<UnitPlan> = (0..4)
            .map(|i| UnitPlan {
                query: 0,
                component: i,
                unit: unit_seed(0, i),
                bytes: (4 - i as u64) * 100,
                job_idx: 0,
            })
            .collect();
        let placed = place(&plans, 2);
        // LPT: 400→s0, 300→s1, 200→s1(? loads 400 vs 300 → s1), 100→s0? loads 400 vs 500 → s0
        assert_eq!(placed[0], vec![0, 3]);
        assert_eq!(placed[1], vec![1, 2]);
    }

    #[test]
    fn sharded_matches_single_shard_oracle() {
        let jobs: Vec<QueryJob> = (0..4).map(two_component_job).collect();
        let runtime = RuntimeConfig { threads: 1, seed: 7, ..RuntimeConfig::default() };
        let oracle = ShardExecutor::new(ShardConfig {
            shards: 1,
            runtime: runtime.clone(),
            memory: MemoryConfig::default(),
        })
        .run(jobs.clone())
        .expect("oracle runs");
        let sharded =
            ShardExecutor::new(ShardConfig { shards: 3, runtime, memory: MemoryConfig::default() })
                .run(jobs)
                .expect("sharded runs");
        assert_eq!(oracle.bindings_text(), sharded.bindings_text());
        assert_eq!(oracle.metrics, sharded.metrics);
        assert_eq!(oracle.metrics.to_json(), sharded.metrics.to_json());
    }

    #[test]
    fn oversized_component_fails_at_plan_time() {
        let jobs = vec![two_component_job(0)];
        let err = ShardExecutor::new(ShardConfig {
            shards: 2,
            runtime: RuntimeConfig { threads: 1, ..RuntimeConfig::default() },
            memory: MemoryConfig { ceiling_bytes: Some(10), streaming: true },
        })
        .run(jobs)
        .expect_err("ceiling must trip");
        assert!(matches!(err, ShardError::ComponentTooLarge { ceiling: 10, .. }));
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let err = ShardExecutor::new(ShardConfig { shards: 0, ..ShardConfig::default() })
            .run(vec![])
            .expect_err("zero shards");
        assert_eq!(err, ShardError::NoShards);
    }

    #[test]
    fn streaming_peak_is_below_upfront_materialization() {
        let jobs: Vec<QueryJob> = (0..6).map(two_component_job).collect();
        let runtime = RuntimeConfig { threads: 1, seed: 3, ..RuntimeConfig::default() };
        let streaming = ShardExecutor::new(ShardConfig {
            shards: 1,
            runtime: runtime.clone(),
            memory: MemoryConfig { ceiling_bytes: None, streaming: true },
        })
        .run(jobs.clone())
        .expect("runs");
        let upfront = ShardExecutor::new(ShardConfig {
            shards: 1,
            runtime,
            memory: MemoryConfig { ceiling_bytes: None, streaming: false },
        })
        .run(jobs)
        .expect("runs");
        assert_eq!(streaming.bindings_text(), upfront.bindings_text());
        assert!(streaming.peak_bytes_max() < upfront.peak_bytes_max());
    }
}
