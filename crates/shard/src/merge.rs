//! The merge layer: reassemble per-component outcomes into per-query
//! results in deterministic component-id order, and fold shard-local
//! metrics into one fleet-wide snapshot.

use std::collections::BTreeSet;

use cdb_core::model::NodeId;
use cdb_crowd::SimTime;
use cdb_runtime::{MetricsSnapshot, QueryResult, RuntimeError, HISTOGRAM_BUCKETS};

/// One query's merged outcome across its components.
#[derive(Debug, Clone)]
pub struct ShardQueryResult {
    /// The query id.
    pub query: u64,
    /// Answer bindings in *global* node ids — the disjoint union of the
    /// per-component answer sets.
    pub bindings: BTreeSet<Vec<NodeId>>,
    /// Components the query was split into.
    pub components: usize,
    /// Distinct tasks asked, summed across components.
    pub tasks_asked: usize,
    /// Worker assignments collected, summed across components.
    pub assignments: usize,
    /// Tasks answered from the reuse cache, summed across components.
    pub tasks_saved: usize,
    /// Crowd rounds: the maximum over components — components run
    /// concurrently, so the query's round depth is its slowest component.
    pub rounds: usize,
    /// Virtual makespan: the maximum over components, for the same reason.
    pub virtual_ms: SimTime,
}

/// Merge one query's per-component results (already remapped to global
/// node ids), presented in ascending component-id order. Any failed
/// component fails the query with the lowest-component error — answers
/// from the other components would be an incomplete (wrong) answer set.
pub fn merge_query(
    query: u64,
    per_component: &[(usize, &Result<QueryResult, RuntimeError>)],
) -> Result<ShardQueryResult, RuntimeError> {
    debug_assert!(per_component.windows(2).all(|w| w[0].0 < w[1].0), "component order");
    for (_, r) in per_component {
        if let Err(e) = r {
            return Err(e.clone());
        }
    }
    let mut merged = ShardQueryResult {
        query,
        bindings: BTreeSet::new(),
        components: per_component.len(),
        tasks_asked: 0,
        assignments: 0,
        tasks_saved: 0,
        rounds: 0,
        virtual_ms: 0,
    };
    for (_, r) in per_component {
        let q = r.as_ref().expect("errors returned above");
        merged.bindings.extend(q.bindings.iter().cloned());
        merged.tasks_asked += q.tasks_asked;
        merged.assignments += q.assignments;
        merged.tasks_saved += q.tasks_saved;
        merged.rounds = merged.rounds.max(q.rounds);
        merged.virtual_ms = merged.virtual_ms.max(q.virtual_ms);
    }
    Ok(merged)
}

/// Remap a component-local binding set to global node ids. The local
/// numbering is a monotone relabeling (see
/// [`component_job`](crate::partition::component_job)), so sorted
/// structures stay sorted.
pub fn remap_bindings(
    local: &BTreeSet<Vec<NodeId>>,
    to_global: &[NodeId],
) -> BTreeSet<Vec<NodeId>> {
    local.iter().map(|b| b.iter().map(|n| to_global[n.0]).collect()).collect()
}

/// An all-zero snapshot — the identity of [`add_snapshots`].
pub fn zero_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        tasks_dispatched: 0,
        retries: 0,
        timeouts: 0,
        reassignments: 0,
        dropouts: 0,
        abandons: 0,
        slowdowns: 0,
        rounds: 0,
        queries_ok: 0,
        queries_failed: 0,
        virtual_ms_total: 0,
        round_ms_total: 0,
        cost_cents: 0,
        tasks_saved: 0,
        money_saved_cents: 0,
        entailment_depth_sum: 0,
        round_latency_buckets: vec![0; HISTOGRAM_BUCKETS],
    }
}

/// Field-wise sum of two snapshots. Every counter is a sum over events,
/// so summing shard-local collectors reconstructs exactly the snapshot a
/// single fleet-wide collector would have produced — the cross-shard
/// conservation identity the simulation checks.
pub fn add_snapshots(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    for (i, slot) in buckets.iter_mut().enumerate() {
        *slot = a.round_latency_buckets.get(i).copied().unwrap_or(0)
            + b.round_latency_buckets.get(i).copied().unwrap_or(0);
    }
    MetricsSnapshot {
        tasks_dispatched: a.tasks_dispatched + b.tasks_dispatched,
        retries: a.retries + b.retries,
        timeouts: a.timeouts + b.timeouts,
        reassignments: a.reassignments + b.reassignments,
        dropouts: a.dropouts + b.dropouts,
        abandons: a.abandons + b.abandons,
        slowdowns: a.slowdowns + b.slowdowns,
        rounds: a.rounds + b.rounds,
        queries_ok: a.queries_ok + b.queries_ok,
        queries_failed: a.queries_failed + b.queries_failed,
        virtual_ms_total: a.virtual_ms_total + b.virtual_ms_total,
        round_ms_total: a.round_ms_total + b.round_ms_total,
        cost_cents: a.cost_cents + b.cost_cents,
        tasks_saved: a.tasks_saved + b.tasks_saved,
        money_saved_cents: a.money_saved_cents + b.money_saved_cents,
        entailment_depth_sum: a.entailment_depth_sum + b.entailment_depth_sum,
        round_latency_buckets: buckets,
    }
}

/// Sum an iterator of snapshots.
pub fn sum_snapshots<'a>(snaps: impl IntoIterator<Item = &'a MetricsSnapshot>) -> MetricsSnapshot {
    snaps.into_iter().fold(zero_snapshot(), |acc, s| add_snapshots(&acc, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sum_is_fieldwise() {
        let mut a = zero_snapshot();
        a.tasks_dispatched = 3;
        a.round_latency_buckets[2] = 5;
        let mut b = zero_snapshot();
        b.tasks_dispatched = 4;
        b.round_latency_buckets[2] = 1;
        let s = sum_snapshots([&a, &b]);
        assert_eq!(s.tasks_dispatched, 7);
        assert_eq!(s.round_latency_buckets[2], 6);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn remap_preserves_order() {
        let to_global = vec![NodeId(4), NodeId(9), NodeId(17)];
        let mut local = BTreeSet::new();
        local.insert(vec![NodeId(0), NodeId(2)]);
        local.insert(vec![NodeId(1)]);
        let global = remap_bindings(&local, &to_global);
        let got: Vec<Vec<NodeId>> = global.into_iter().collect();
        assert_eq!(got, vec![vec![NodeId(4), NodeId(17)], vec![NodeId(9)]]);
    }
}
