//! Connected-component partitioning of a [`QueryGraph`].
//!
//! The partition rule rests on a structural fact of the graph model: a
//! candidate (and hence an answer) is a *connected* substructure — its
//! vertices are linked through its own edges — so every candidate lies
//! entirely inside one connected component of the tuple graph.
//! Transitivity/entailment inference likewise never crosses components
//! (Wang et al., *Leveraging Transitive Relations for Crowdsourced
//! Joins*). Components are therefore independent work units: the answer
//! set of the whole graph is the disjoint union of the answer sets of its
//! components.
//!
//! Component ids are assigned by ascending minimum global [`NodeId`], so
//! the numbering depends only on the node/edge *sets*, never on edge
//! insertion order. Nodes with no incident edges belong to no candidate
//! (a candidate must use one edge per predicate) and are dropped — except
//! in the degenerate edge-free graph, which becomes a single component so
//! the sharded path stays defined for every input.

use std::collections::HashMap;

use cdb_core::executor::EdgeTruth;
use cdb_core::model::{EdgeId, NodeId};
use cdb_core::QueryGraph;
use cdb_runtime::QueryJob;

/// One connected component of a query graph: an independent work unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component id: position in the partition's ascending-min-node order.
    pub id: usize,
    /// Member vertices, ascending by global [`NodeId`].
    pub nodes: Vec<NodeId>,
    /// Member edges, ascending by global [`EdgeId`].
    pub edges: Vec<EdgeId>,
}

impl Component {
    /// The component's smallest global node id — the stable sort key the
    /// component numbering is defined by.
    pub fn min_node(&self) -> NodeId {
        *self.nodes.first().expect("components are never empty")
    }
}

/// A query graph split into connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Components in ascending-min-node order; `components[i].id == i`.
    pub components: Vec<Component>,
    /// Node count of the source graph (for validity checking).
    pub source_nodes: usize,
    /// Edge count of the source graph (for validity checking).
    pub source_edges: usize,
}

/// A reason a [`Partition`] fails validation — the cross-shard leak
/// detector. Each variant names the smallest piece of evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionViolation {
    /// An edge appears in no component (work silently dropped) or in more
    /// than one (work double-bought).
    EdgeCoverage {
        /// The offending edge.
        edge: EdgeId,
        /// How many components claim it.
        claims: usize,
    },
    /// A component claims an edge whose endpoints are not both members —
    /// the signature of a component split (leaked) across shards.
    ForeignEdge {
        /// The claiming component.
        component: usize,
        /// The edge whose endpoints escape the component.
        edge: EdgeId,
    },
    /// A node appears in more than one component.
    NodeOverlap {
        /// The duplicated node.
        node: NodeId,
    },
    /// A component's member set is not connected through its own edges.
    Disconnected {
        /// The offending component.
        component: usize,
    },
    /// Component ids are not the ascending-min-node numbering.
    BadOrder {
        /// The first out-of-place component.
        component: usize,
    },
}

impl std::fmt::Display for PartitionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionViolation::EdgeCoverage { edge, claims } => {
                write!(f, "edge {edge:?} claimed by {claims} components (want exactly 1)")
            }
            PartitionViolation::ForeignEdge { component, edge } => {
                write!(f, "component {component} claims edge {edge:?} with a foreign endpoint")
            }
            PartitionViolation::NodeOverlap { node } => {
                write!(f, "node {node:?} appears in more than one component")
            }
            PartitionViolation::Disconnected { component } => {
                write!(f, "component {component} is not connected through its own edges")
            }
            PartitionViolation::BadOrder { component } => {
                write!(f, "component {component} breaks the ascending-min-node numbering")
            }
        }
    }
}

/// Union-find with path halving and union by size.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// Split `g` into connected components.
///
/// Deterministic and insertion-order independent: the result depends only
/// on the graph's node and edge sets. Edge-free graphs collapse to a
/// single component holding every node (nothing to shard, but the
/// component-wise execution path stays total).
pub fn partition(g: &QueryGraph) -> Partition {
    let n = g.node_count();
    let m = g.edge_count();
    if m == 0 {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let components =
            if n == 0 { Vec::new() } else { vec![Component { id: 0, nodes, edges: Vec::new() }] };
        return Partition { components, source_nodes: n, source_edges: m };
    }
    let mut dsu = Dsu::new(n);
    for e in 0..m {
        let (u, v) = g.edge_endpoints(EdgeId(e));
        dsu.union(u.0, v.0);
    }
    // Group nodes by root. Scanning nodes in ascending id order makes each
    // group's node list sorted and keys each root by its minimum node.
    let mut by_root: HashMap<usize, usize> = HashMap::new(); // root -> slot
    let mut comps: Vec<Component> = Vec::new();
    for node in 0..n {
        if g.incident_edges(NodeId(node)).is_empty() {
            continue; // isolated: in no candidate, in no component
        }
        let root = dsu.find(node);
        let slot = *by_root.entry(root).or_insert_with(|| {
            comps.push(Component { id: comps.len(), nodes: Vec::new(), edges: Vec::new() });
            comps.len() - 1
        });
        comps[slot].nodes.push(NodeId(node));
    }
    // Slots were created in ascending-min-node order already (first visit
    // of each root is its minimum node), so ids are final. Attach edges in
    // ascending id order.
    for e in 0..m {
        let (u, _) = g.edge_endpoints(EdgeId(e));
        let slot = by_root[&dsu.find(u.0)];
        comps[slot].edges.push(EdgeId(e));
    }
    Partition { components: comps, source_nodes: n, source_edges: m }
}

/// Validate a partition against its source graph — the checker the
/// `leak-cross-shard` sabotage mode must trip. Verifies that every edge is
/// claimed exactly once, no edge's endpoints escape its component, no node
/// is shared, every component is internally connected, and the numbering
/// is the canonical ascending-min-node order.
pub fn verify_partition(g: &QueryGraph, p: &Partition) -> Result<(), PartitionViolation> {
    let mut edge_claims = vec![0usize; g.edge_count()];
    let mut node_owner: HashMap<NodeId, usize> = HashMap::new();
    for comp in &p.components {
        for &node in &comp.nodes {
            if node_owner.insert(node, comp.id).is_some() {
                return Err(PartitionViolation::NodeOverlap { node });
            }
        }
    }
    for comp in &p.components {
        for &edge in &comp.edges {
            if edge.0 >= edge_claims.len() {
                return Err(PartitionViolation::ForeignEdge { component: comp.id, edge });
            }
            edge_claims[edge.0] += 1;
            let (u, v) = g.edge_endpoints(edge);
            if node_owner.get(&u) != Some(&comp.id) || node_owner.get(&v) != Some(&comp.id) {
                return Err(PartitionViolation::ForeignEdge { component: comp.id, edge });
            }
        }
    }
    for (e, &claims) in edge_claims.iter().enumerate() {
        if claims != 1 {
            return Err(PartitionViolation::EdgeCoverage { edge: EdgeId(e), claims });
        }
    }
    // Connectivity: BFS over each component's own edges must reach every
    // member node. (Skip the degenerate edge-free single component.)
    for comp in &p.components {
        if comp.edges.is_empty() {
            if g.edge_count() > 0 {
                return Err(PartitionViolation::Disconnected { component: comp.id });
            }
            continue;
        }
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &e in &comp.edges {
            let (u, v) = g.edge_endpoints(e);
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        let start = comp.min_node();
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        let mut queue = vec![start];
        seen.insert(start, ());
        while let Some(x) = queue.pop() {
            for &y in adj.get(&x).into_iter().flatten() {
                if seen.insert(y, ()).is_none() {
                    queue.push(y);
                }
            }
        }
        if comp.nodes.iter().any(|n| !seen.contains_key(n)) {
            return Err(PartitionViolation::Disconnected { component: comp.id });
        }
    }
    // Canonical numbering.
    for (i, comp) in p.components.iter().enumerate() {
        let in_order = comp.id == i
            && (i == 0 || p.components[i - 1].min_node() < comp.min_node())
            && comp.nodes.windows(2).all(|w| w[0] < w[1])
            && comp.edges.windows(2).all(|w| w[0] < w[1]);
        if !in_order {
            return Err(PartitionViolation::BadOrder { component: i });
        }
    }
    Ok(())
}

/// Materialize one component as a self-contained [`QueryJob`].
///
/// The sub-graph copies *all* parts and *all* predicates of the source
/// (so part/predicate indices — and with them reuse measures and plan
/// shapes — are identical to the monolithic graph), then only the
/// component's nodes and edges. Nodes are added in ascending global-id
/// order, so the local numbering is a monotone relabeling: any
/// node-id-sorted structure (answer bindings in particular) maps back to
/// the global order unchanged.
///
/// Returns the job (with `unit_id` as its id — the seed stream key) and
/// the local→global node map (`map[local.0] == global`).
pub fn component_job(
    g: &QueryGraph,
    truth: &EdgeTruth,
    comp: &Component,
    unit_id: u64,
) -> (QueryJob, Vec<NodeId>) {
    let mut sub = QueryGraph::new();
    for p in 0..g.part_count() {
        sub.add_part(g.part_kind(cdb_core::model::PartId(p)).clone());
    }
    for info in g.predicates() {
        sub.add_predicate(info.a, info.b, info.crowd, &info.description);
    }
    let mut to_local: HashMap<NodeId, NodeId> = HashMap::with_capacity(comp.nodes.len());
    let mut to_global: Vec<NodeId> = Vec::with_capacity(comp.nodes.len());
    for &node in &comp.nodes {
        let local = sub.add_node(
            g.node_part(node),
            g.node_tuple(node).cloned(),
            g.node_label(node).to_string(),
        );
        to_local.insert(node, local);
        to_global.push(node);
    }
    let mut local_truth = EdgeTruth::with_capacity(comp.edges.len());
    for &edge in &comp.edges {
        let (u, v) = g.edge_endpoints(edge);
        let local =
            sub.add_edge(to_local[&u], to_local[&v], g.edge_predicate(edge), g.edge_weight(edge));
        let t = *truth.get(&edge).expect("every edge of the graph has a truth color");
        local_truth.insert(local, t);
    }
    (QueryJob { id: unit_id, graph: sub, truth: local_truth }, to_global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::model::PartKind;

    /// Two disjoint joins in one graph: `{a0,b0}` and `{a1,a2,b1}`.
    fn two_component_graph() -> QueryGraph {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let an: Vec<NodeId> = (0..3).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let bn: Vec<NodeId> = (0..2).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
        let p = g.add_predicate(a, b, true, "A~B");
        g.add_edge(an[0], bn[0], p, 0.5);
        g.add_edge(an[1], bn[1], p, 0.5);
        g.add_edge(an[2], bn[1], p, 0.5);
        g
    }

    #[test]
    fn splits_disjoint_joins_into_two_components() {
        let g = two_component_graph();
        let p = partition(&g);
        assert_eq!(p.components.len(), 2);
        assert_eq!(p.components[0].nodes, vec![NodeId(0), NodeId(3)]);
        assert_eq!(p.components[1].nodes, vec![NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(p.components[0].edges, vec![EdgeId(0)]);
        assert_eq!(p.components[1].edges, vec![EdgeId(1), EdgeId(2)]);
        verify_partition(&g, &p).expect("canonical partition verifies");
    }

    #[test]
    fn edge_free_graph_is_one_component() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        g.add_node(a, None, "a0");
        let p = partition(&g);
        assert_eq!(p.components.len(), 1);
        assert!(p.components[0].edges.is_empty());
        verify_partition(&g, &p).expect("degenerate partition verifies");
    }

    #[test]
    fn verifier_catches_a_leaked_edge() {
        let g = two_component_graph();
        let mut p = partition(&g);
        // Leak: move component 1's first edge into component 0 — the
        // cross-shard split the sabotage mode simulates.
        let e = p.components[1].edges.remove(0);
        p.components[0].edges.push(e);
        assert!(matches!(
            verify_partition(&g, &p),
            Err(PartitionViolation::ForeignEdge { component: 0, .. })
        ));
    }

    #[test]
    fn verifier_catches_a_dropped_edge() {
        let g = two_component_graph();
        let mut p = partition(&g);
        p.components[1].edges.pop();
        assert!(matches!(verify_partition(&g, &p), Err(PartitionViolation::EdgeCoverage { .. })));
    }

    #[test]
    fn component_job_maps_back_to_global_ids() {
        let g = two_component_graph();
        let mut truth = EdgeTruth::new();
        for e in 0..g.edge_count() {
            truth.insert(EdgeId(e), true);
        }
        let p = partition(&g);
        let (job, map) = component_job(&g, &truth, &p.components[1], 7);
        assert_eq!(job.id, 7);
        assert_eq!(job.graph.node_count(), 3);
        assert_eq!(job.graph.edge_count(), 2);
        assert_eq!(job.graph.part_count(), g.part_count());
        assert_eq!(job.graph.predicates().len(), g.predicates().len());
        assert_eq!(map, vec![NodeId(1), NodeId(2), NodeId(4)]);
        // Labels survive the relabeling.
        assert_eq!(job.graph.node_label(NodeId(0)), g.node_label(NodeId(1)));
    }
}
