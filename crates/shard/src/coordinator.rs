//! The global coordinator: `cdb-sched`'s admission envelope and DRR
//! fair-share, promoted to run *sharded* fleets.
//!
//! Admission still reasons per query (the envelope estimate covers the
//! whole graph), but the crowd schedule interleaves execution *units* —
//! one flow per `(query, component)` — so a query split across shards
//! competes for crowd capacity with every other unit, and shared HITs
//! pack tasks from units on *different shards* into one publication with
//! the existing cents-exact attribution. Platform spend equals the sum
//! of per-query attributions by construction (the conservation identity
//! `cdb-sim` checks across shards).

use std::collections::BTreeMap;

use cdb_core::cost::estimate::estimate;
use cdb_crowd::{attribute_shared_cents, pack_shared, HitConfig};
use cdb_runtime::{QueryJob, RuntimeError};
use cdb_sched::drr::schedule;
use cdb_sched::{
    AdmissionController, AdmissionDecision, DrrConfig, Envelope, QueryRequest, RoundRecord,
};

use crate::executor::{ShardConfig, ShardExecutor, ShardStats, UnitOutcome};
use crate::memory::ShardError;
use crate::merge::{add_snapshots, sum_snapshots, ShardQueryResult};
use cdb_runtime::MetricsSnapshot;

/// Coordinator configuration: the sharded executor plus the scheduling
/// policy layered on top of it.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The sharded execution fabric (shard count, runtime, memory).
    pub shard: ShardConfig,
    /// Global admission envelope (budget, concurrency, queue bound).
    pub envelope: Envelope,
    /// Fair-share knobs applied across execution units.
    pub drr: DrrConfig,
    /// HIT packing configuration.
    pub hit: HitConfig,
    /// Pack tasks from different units (and so different shards) into
    /// shared HITs. Off bills each unit its own HITs per round.
    pub batching: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            shard: ShardConfig::default(),
            envelope: Envelope::default(),
            drr: DrrConfig::default(),
            hit: HitConfig::default(),
            batching: true,
        }
    }
}

/// One query submitted to the coordinator: the job plus its resources.
#[derive(Debug, Clone)]
pub struct ShardSubmission {
    /// The query to run.
    pub job: QueryJob,
    /// Money this query brings, in cents.
    pub budget_cents: u64,
    /// Optional deadline in global scheduler rounds.
    pub deadline_rounds: Option<usize>,
}

impl ShardSubmission {
    /// A submission with an effectively unlimited budget and no deadline.
    pub fn unconstrained(job: QueryJob) -> Self {
        ShardSubmission { job, budget_cents: u64::MAX, deadline_rounds: None }
    }
}

/// The coordinator's merged report.
#[derive(Debug, Clone)]
pub struct CoordinatorReport {
    /// Admission decision per submission, in arrival order.
    pub decisions: Vec<(u64, AdmissionDecision)>,
    /// Per-query merged results, in query-id order.
    pub results: Vec<(u64, Result<ShardQueryResult, RuntimeError>)>,
    /// The billed global rounds, with contributions aggregated per query.
    pub rounds: Vec<RoundRecord>,
    /// Global round in which each query released its last task.
    pub completion_round: BTreeMap<u64, usize>,
    /// Cents attributed to each query under the configured billing mode.
    pub attributed_cents: BTreeMap<u64, u64>,
    /// Total platform spend, in cents. Always equals the sum of
    /// `attributed_cents` — attribution conserves money across shards.
    pub platform_cents: u64,
    /// HITs published under the configured batching mode.
    pub total_hits: usize,
    /// HITs a per-unit billing would have published.
    pub solo_hits: usize,
    /// Admission waves executed.
    pub waves: usize,
    /// Every execution unit's outcome across all waves.
    pub units: Vec<UnitOutcome>,
    /// Per-shard statistics aggregated across waves.
    pub shards: Vec<ShardStats>,
    /// Fleet-wide metrics: field-wise sum of every shard-local collector.
    pub metrics: MetricsSnapshot,
}

impl CoordinatorReport {
    /// Fraction of HITs saved versus per-unit billing.
    pub fn hit_reduction(&self) -> f64 {
        if self.solo_hits == 0 {
            0.0
        } else {
            1.0 - self.total_hits as f64 / self.solo_hits as f64
        }
    }
}

/// Runs sharded fleets under admission control with fair-share billing.
pub struct Coordinator {
    cfg: CoordinatorConfig,
}

impl Coordinator {
    /// Build a coordinator from its configuration.
    pub fn new(cfg: CoordinatorConfig) -> Self {
        Coordinator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.cfg
    }

    /// Admit, execute (sharded) and bill every submitted query.
    /// Submission order is the arrival order admission sees; execution
    /// and billing are then deterministic given that order, independent
    /// of shard count and thread count.
    pub fn run(&self, submissions: Vec<ShardSubmission>) -> Result<CoordinatorReport, ShardError> {
        let redundancy = self.cfg.shard.runtime.exec.redundancy;
        let price_cents = self.cfg.shard.runtime.market.task_price_cents();
        let executor = ShardExecutor::new(self.cfg.shard.clone());

        // Admission pass, in arrival order — per *query*; the envelope
        // estimate covers the whole graph regardless of how it shards.
        let mut ctl = AdmissionController::new(self.cfg.envelope);
        let mut decisions = Vec::new();
        let mut queued_jobs: BTreeMap<u64, QueryJob> = BTreeMap::new();
        let mut wave: Vec<(QueryRequest, QueryJob)> = Vec::new();
        for sub in submissions {
            let est = estimate(&sub.job.graph, redundancy, price_cents);
            let req = QueryRequest {
                query: sub.job.id,
                estimate: est,
                budget_cents: sub.budget_cents,
                deadline_rounds: sub.deadline_rounds,
            };
            let decision = ctl.offer(req);
            match decision {
                AdmissionDecision::Admitted => wave.push((req, sub.job)),
                AdmissionDecision::Queued { .. } => {
                    queued_jobs.insert(req.query, sub.job);
                }
                AdmissionDecision::Rejected(_) => {}
            }
            decisions.push((req.query, decision));
        }

        let mut results: Vec<(u64, Result<ShardQueryResult, RuntimeError>)> = Vec::new();
        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut completion_round: BTreeMap<u64, usize> = BTreeMap::new();
        let mut attributed_cents: BTreeMap<u64, u64> = BTreeMap::new();
        let mut platform_cents = 0u64;
        let mut total_hits = 0usize;
        let mut solo_hits = 0usize;
        let mut waves = 0usize;
        let mut units: Vec<UnitOutcome> = Vec::new();
        let mut shards: Vec<ShardStats> = (0..self.cfg.shard.shards.max(1))
            .map(|s| ShardStats {
                shard: s,
                units: 0,
                assigned_bytes: 0,
                peak_bytes: 0,
                virtual_ms: 0,
                metrics: crate::merge::zero_snapshot(),
            })
            .collect();
        while !wave.is_empty() {
            waves += 1;
            let (reqs, jobs): (Vec<_>, Vec<_>) = wave.drain(..).unzip();
            let report = executor.run(jobs)?;
            // One DRR flow per execution unit. Flow ids are the unit's
            // index in (query, component) order — deterministic, unique,
            // and stable across shard/thread counts.
            let traces: Vec<(u64, Vec<usize>)> = report
                .units
                .iter()
                .enumerate()
                .filter_map(|(fi, u)| {
                    u.result.as_ref().ok().map(|q| (fi as u64, q.round_tasks.clone()))
                })
                .collect();
            let flow_query: Vec<u64> = report.units.iter().map(|u| u.query).collect();
            let (globals, finish) = schedule(&traces, self.cfg.drr);
            let base = rounds.len();
            for g in &globals {
                let tph = self.cfg.hit.tasks_per_hit;
                let round_solo: usize = g.contributions.iter().map(|&(_, n)| n.div_ceil(tph)).sum();
                // Bill per-unit flows; shared HITs therefore mix tasks
                // from units placed on different shards.
                let (hits, attributed_flows) = if self.cfg.batching {
                    let shared = pack_shared(&g.contributions, self.cfg.hit);
                    (shared.len(), attribute_shared_cents(&shared, self.cfg.hit, redundancy))
                } else {
                    (
                        round_solo,
                        g.contributions
                            .iter()
                            .map(|&(f, n)| {
                                (f, self.cfg.hit.hits_cost_cents(n.div_ceil(tph), redundancy))
                            })
                            .collect(),
                    )
                };
                let cents = self.cfg.hit.hits_cost_cents(hits, redundancy);
                debug_assert_eq!(
                    attributed_flows.iter().map(|&(_, c)| c).sum::<u64>(),
                    cents,
                    "attribution must conserve platform cents across shards"
                );
                // Fold flow-level attribution and contributions back to
                // query ids for the report.
                for &(f, c) in &attributed_flows {
                    *attributed_cents.entry(flow_query[f as usize]).or_default() += c;
                }
                let mut per_query: BTreeMap<u64, usize> = BTreeMap::new();
                for &(f, n) in &g.contributions {
                    *per_query.entry(flow_query[f as usize]).or_default() += n;
                }
                platform_cents += cents;
                total_hits += hits;
                solo_hits += round_solo;
                rounds.push(RoundRecord {
                    index: base + g.index,
                    contributions: per_query.into_iter().collect(),
                    hits,
                    cents,
                });
            }
            for (f, r) in finish {
                let q = flow_query[f as usize];
                let done = completion_round.entry(q).or_default();
                *done = (*done).max(base + r);
            }
            for (s, stat) in report.shards.iter().enumerate() {
                let agg = &mut shards[s];
                agg.units += stat.units;
                agg.assigned_bytes += stat.assigned_bytes;
                agg.peak_bytes = agg.peak_bytes.max(stat.peak_bytes);
                agg.virtual_ms += stat.virtual_ms;
                agg.metrics = add_snapshots(&agg.metrics, &stat.metrics);
            }
            units.extend(report.units);
            results.extend(report.results);
            for req in &reqs {
                ctl.complete(&req.estimate);
            }
            wave = ctl
                .admit_wave()
                .into_iter()
                .map(|req| {
                    let job = queued_jobs.remove(&req.query).expect("queued job exists");
                    (req, job)
                })
                .collect();
        }
        results.sort_by_key(|&(id, _)| id);
        let metrics = sum_snapshots(shards.iter().map(|s| &s.metrics));
        Ok(CoordinatorReport {
            decisions,
            results,
            rounds,
            completion_round,
            attributed_cents,
            platform_cents,
            total_hits,
            solo_hits,
            waves,
            units,
            shards,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::executor::EdgeTruth;
    use cdb_core::model::PartKind;
    use cdb_core::QueryGraph;
    use cdb_runtime::RuntimeConfig;

    fn multi_component_job(id: u64, comps: usize) -> QueryJob {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let p = g.add_predicate(a, b, true, "A~B");
        let mut truth = EdgeTruth::new();
        for i in 0..comps {
            let x = g.add_node(a, None, format!("a{i}"));
            let y = g.add_node(b, None, format!("b{i}"));
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % 2 == 0);
        }
        QueryJob { id, graph: g, truth }
    }

    #[test]
    fn attribution_conserves_platform_cents() {
        let cfg = CoordinatorConfig {
            shard: ShardConfig {
                shards: 2,
                runtime: RuntimeConfig { threads: 1, seed: 11, ..RuntimeConfig::default() },
                ..ShardConfig::default()
            },
            ..CoordinatorConfig::default()
        };
        let subs = (0..5).map(|i| ShardSubmission::unconstrained(multi_component_job(i, 3)));
        let report = Coordinator::new(cfg).run(subs.collect()).expect("runs");
        assert_eq!(report.results.len(), 5);
        let attributed: u64 = report.attributed_cents.values().sum();
        assert_eq!(attributed, report.platform_cents);
        assert!(report.platform_cents > 0);
        assert!(report.total_hits <= report.solo_hits);
    }

    #[test]
    fn billing_is_shard_count_invariant() {
        let mk = |shards: usize| {
            let cfg = CoordinatorConfig {
                shard: ShardConfig {
                    shards,
                    runtime: RuntimeConfig { threads: 1, seed: 5, ..RuntimeConfig::default() },
                    ..ShardConfig::default()
                },
                ..CoordinatorConfig::default()
            };
            let subs = (0..4).map(|i| ShardSubmission::unconstrained(multi_component_job(i, 2)));
            Coordinator::new(cfg).run(subs.collect()).expect("runs")
        };
        let one = mk(1);
        let four = mk(4);
        assert_eq!(one.platform_cents, four.platform_cents);
        assert_eq!(one.attributed_cents, four.attributed_cents);
        assert_eq!(one.rounds, four.rounds);
        assert_eq!(one.completion_round, four.completion_round);
        assert_eq!(one.metrics.to_json(), four.metrics.to_json());
    }
}
