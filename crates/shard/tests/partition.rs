//! Partitioner properties: every edge lands in exactly one shard unit,
//! component-id order is stable under insertion-order permutation, and a
//! component over the memory ceiling fails with a typed error — never an
//! OOM and never a hang.

use std::collections::BTreeSet;

use cdb_core::executor::EdgeTruth;
use cdb_core::model::{NodeId, PartKind};
use cdb_core::QueryGraph;
use cdb_runtime::{QueryJob, RuntimeConfig};
use cdb_shard::{
    component_bytes, partition, verify_partition, MemoryConfig, ShardConfig, ShardError,
    ShardExecutor,
};
use proptest::prelude::*;

/// Build a multi-component join graph: `sizes[c] = (na, nb)` pairs per
/// component, with edges inserted in the order given by `edge_order`
/// (indices into the flattened edge list, a permutation).
fn build(sizes: &[(usize, usize)], edge_order: &[usize]) -> (QueryGraph, EdgeTruth) {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: "A".into() });
    let b = g.add_part(PartKind::Table { name: "B".into() });
    let p = g.add_predicate(a, b, true, "A~B");
    // Nodes first, in a fixed order, so the node-id space is identical
    // for every edge permutation.
    let mut pairs: Vec<(NodeId, NodeId, bool)> = Vec::new();
    for (c, &(na, nb)) in sizes.iter().enumerate() {
        let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("c{c}a{i}"))).collect();
        let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("c{c}b{i}"))).collect();
        for (i, &x) in an.iter().enumerate() {
            for (j, &y) in bn.iter().enumerate() {
                pairs.push((x, y, i % nb == j));
            }
        }
    }
    let mut truth = EdgeTruth::new();
    for &oi in edge_order {
        let (x, y, t) = pairs[oi];
        let e = g.add_edge(x, y, p, 0.5);
        truth.insert(e, t);
    }
    (g, truth)
}

fn sizes_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((1usize..4, 1usize..4), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every edge belongs to exactly one component, and the partition
    /// passes its own verifier, for arbitrary multi-component graphs.
    #[test]
    fn every_edge_lands_in_exactly_one_component(sizes in sizes_strategy()) {
        let m: usize = sizes.iter().map(|&(na, nb)| na * nb).sum();
        let order: Vec<usize> = (0..m).collect();
        let (g, _) = build(&sizes, &order);
        let p = partition(&g);
        verify_partition(&g, &p).expect("fresh partition verifies");
        let mut seen = BTreeSet::new();
        for comp in &p.components {
            for e in &comp.edges {
                prop_assert!(seen.insert(e.0), "edge {} claimed twice", e.0);
            }
        }
        prop_assert_eq!(seen.len(), m, "every edge claimed");
        prop_assert_eq!(p.components.len(), sizes.len());
    }

    /// The component decomposition — node sets, in component-id order —
    /// is invariant under the order edges were inserted in.
    #[test]
    fn component_order_is_stable_under_insertion_permutation(
        sizes in sizes_strategy(),
        perm_seed in 0u64..1_000,
    ) {
        let m: usize = sizes.iter().map(|&(na, nb)| na * nb).sum();
        let canonical: Vec<usize> = (0..m).collect();
        // A deterministic permutation keyed by the seed (Fisher–Yates
        // with a tiny LCG — proptest shrinks the seed, not the vec).
        let mut permuted = canonical.clone();
        let mut s = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..permuted.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            permuted.swap(i, (s >> 33) as usize % (i + 1));
        }
        let (g1, _) = build(&sizes, &canonical);
        let (g2, _) = build(&sizes, &permuted);
        let p1 = partition(&g1);
        let p2 = partition(&g2);
        verify_partition(&g2, &p2).expect("permuted partition verifies");
        let nodes = |p: &cdb_shard::Partition| -> Vec<Vec<usize>> {
            p.components.iter().map(|c| c.nodes.iter().map(|n| n.0).collect()).collect()
        };
        prop_assert_eq!(nodes(&p1), nodes(&p2), "component node sets and order");
    }

    /// A component estimated over the ceiling fails the run with
    /// `ComponentTooLarge` at plan time — a typed error, not an OOM kill
    /// or a hang — and the error names the offending component.
    #[test]
    fn oversized_component_is_a_typed_plan_time_error(sizes in sizes_strategy()) {
        let m: usize = sizes.iter().map(|&(na, nb)| na * nb).sum();
        let order: Vec<usize> = (0..m).collect();
        let (g, truth) = build(&sizes, &order);
        let p = partition(&g);
        let max_bytes =
            p.components.iter().map(|c| component_bytes(&g, c)).max().expect("components");
        let job = QueryJob { id: 0, graph: g, truth };
        let exec = ShardExecutor::new(ShardConfig {
            shards: 2,
            runtime: RuntimeConfig { threads: 1, ..RuntimeConfig::default() },
            memory: MemoryConfig { ceiling_bytes: Some(max_bytes - 1), streaming: true },
        });
        match exec.run(vec![job]) {
            Err(ShardError::ComponentTooLarge { bytes, ceiling, .. }) => {
                prop_assert!(bytes > ceiling);
                prop_assert_eq!(ceiling, max_bytes - 1);
            }
            other => prop_assert!(false, "expected ComponentTooLarge, got {:?}", other.is_ok()),
        }
        // The same workload *passes* when the ceiling admits the largest
        // component — the gate is exact, not approximate.
        let order: Vec<usize> = (0..m).collect();
        let (g, truth) = build(&sizes, &order);
        let job = QueryJob { id: 0, graph: g, truth };
        let exec = ShardExecutor::new(ShardConfig {
            shards: 2,
            runtime: RuntimeConfig { threads: 1, ..RuntimeConfig::default() },
            memory: MemoryConfig { ceiling_bytes: Some(max_bytes), streaming: true },
        });
        prop_assert!(exec.run(vec![job]).is_ok());
    }
}
