//! Shard-aware differential testing: the sharded path must produce
//! byte-identical bindings and byte-identical merged metrics JSON at
//! every tested (shard count × thread count) combination, for random
//! multi-join workloads and for the 3-part-chain fleet the runtime's own
//! determinism suite exercises.

use std::collections::HashMap;

use cdb_core::model::{NodeId, PartKind};
use cdb_core::QueryGraph;
use cdb_runtime::{FaultPlan, QueryJob, RetryPolicy, RuntimeConfig, RuntimeExecutor};
use cdb_shard::{MemoryConfig, ShardConfig, ShardExecutor};
use proptest::prelude::*;

/// A single-join query graph: `a_i` joins `b_j` iff `i % nb == j`.
fn join_query(id: u64, na: usize, nb: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let p = g.add_predicate(a, b, true, "A~B");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % nb == j);
        }
    }
    QueryJob { id, graph: g, truth }
}

/// A multi-component query: `comps` disjoint joins in one graph, each
/// `size × size` with truth `i % size == j`.
fn multi_component_query(id: u64, comps: usize, size: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let p = g.add_predicate(a, b, true, "A~B");
    let mut truth = HashMap::new();
    for c in 0..comps {
        let an: Vec<NodeId> = (0..size).map(|i| g.add_node(a, None, format!("c{c}a{i}"))).collect();
        let bn: Vec<NodeId> = (0..size).map(|i| g.add_node(b, None, format!("c{c}b{i}"))).collect();
        for (i, &x) in an.iter().enumerate() {
            for (j, &y) in bn.iter().enumerate() {
                let e = g.add_edge(x, y, p, 0.5);
                truth.insert(e, i % size == j);
            }
        }
    }
    QueryJob { id, graph: g, truth }
}

/// The 3-part chain `A ⋈ B ⋈ C` from `cdb-runtime`'s determinism suite:
/// `b_j` matches `a_i` iff `i % nb == j` and `c_k` iff `j % nc == k % nb`.
fn chain_query(id: u64, na: usize, nb: usize, nc: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let c = g.add_part(PartKind::Table { name: format!("C{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let cn: Vec<NodeId> = (0..nc).map(|i| g.add_node(c, None, format!("c{i}"))).collect();
    let pab = g.add_predicate(a, b, true, "A~B");
    let pbc = g.add_predicate(b, c, true, "B~C");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, pab, 0.6);
            truth.insert(e, i % nb == j);
        }
    }
    for (j, &y) in bn.iter().enumerate() {
        for (k, &z) in cn.iter().enumerate() {
            let e = g.add_edge(y, z, pbc, 0.4);
            truth.insert(e, j % nc == k % nb);
        }
    }
    QueryJob { id, graph: g, truth }
}

fn runtime_cfg(threads: usize, seed: u64, fault_rate: f64) -> RuntimeConfig {
    RuntimeConfig {
        threads,
        seed,
        worker_accuracies: vec![0.9; 25],
        fault_plan: FaultPlan::uniform(seed ^ 0xF00D, fault_rate),
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        ..RuntimeConfig::default()
    }
}

/// Run a fleet sharded and return `(bindings_text, metrics JSON)` — the
/// two byte-equality artifacts.
fn run_sharded(
    jobs: &[QueryJob],
    shards: usize,
    threads: usize,
    seed: u64,
    fault_rate: f64,
) -> (String, String) {
    let report = ShardExecutor::new(ShardConfig {
        shards,
        runtime: runtime_cfg(threads, seed, fault_rate),
        memory: MemoryConfig::default(),
    })
    .run(jobs.to_vec())
    .expect("sharded run");
    (report.bindings_text(), report.metrics.to_json())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random multi-join workloads: 1/2/4/8 shards × 1/4/8 threads all
    /// produce byte-identical bindings and metrics JSON.
    #[test]
    fn sharded_bindings_and_metrics_are_byte_identical(
        seed in 0u64..10_000,
        fault_rate in 0.0f64..0.2,
        comps in 1usize..4,
    ) {
        let jobs: Vec<QueryJob> =
            (0..3).map(|i| multi_component_query(i, comps + i as usize % 2, 2)).collect();
        let (oracle_bind, oracle_json) = run_sharded(&jobs, 1, 1, seed, fault_rate);
        prop_assert!(!oracle_bind.is_empty());
        for shards in [2usize, 4, 8] {
            for threads in [1usize, 4, 8] {
                let (bind, json) = run_sharded(&jobs, shards, threads, seed, fault_rate);
                prop_assert_eq!(&bind, &oracle_bind, "shards={} threads={}", shards, threads);
                prop_assert_eq!(&json, &oracle_json, "shards={} threads={}", shards, threads);
            }
        }
    }
}

/// The exact 3-part-chain fleet from
/// `crates/runtime/tests/determinism.rs::multi_join_answers_are_byte_identical`,
/// run through the shard fabric at every (shards × threads) combination.
#[test]
fn chain_fleet_is_byte_identical_across_shard_and_thread_counts() {
    let jobs: Vec<QueryJob> = (0..6).map(|i| chain_query(i, 3, 3, 2)).collect();
    let (oracle_bind, oracle_json) = run_sharded(&jobs, 1, 1, 42, 0.1);
    assert!(oracle_bind.contains("q0") && oracle_bind.contains("q5"));
    for shards in [2usize, 4, 8] {
        for threads in [1usize, 4, 8] {
            let (bind, json) = run_sharded(&jobs, shards, threads, 42, 0.1);
            assert_eq!(bind, oracle_bind, "shards={shards} threads={threads}");
            assert_eq!(json, oracle_json, "shards={shards} threads={threads}");
        }
    }
}

/// Bridge to the unsharded runtime: with perfect workers and no faults,
/// both the plain `RuntimeExecutor` and the shard fabric recover exactly
/// the true joins — so their bindings agree byte-for-byte even though
/// their random streams differ.
#[test]
fn perfect_workers_bridge_sharded_to_the_monolithic_runtime() {
    let jobs: Vec<QueryJob> = (0..4).map(|i| multi_component_query(i, 2, 3)).collect();
    let cfg = RuntimeConfig {
        threads: 2,
        seed: 9,
        worker_accuracies: vec![1.0; 20],
        ..RuntimeConfig::default()
    };
    let mono = RuntimeExecutor::new(cfg.clone()).run(jobs.clone());
    assert_eq!(mono.failed_count(), 0);
    for shards in [1usize, 3] {
        let sharded = ShardExecutor::new(ShardConfig {
            shards,
            runtime: cfg.clone(),
            memory: MemoryConfig::default(),
        })
        .run(jobs.clone())
        .expect("sharded run");
        assert_eq!(sharded.bindings_text(), mono.bindings_text(), "shards={shards}");
    }
    // And the recovered joins are the planted truth: size columns of 3
    // with `i % 3 == j` give 3 bindings per component, 6 per query.
    for (_, r) in &mono.results {
        assert_eq!(r.as_ref().expect("ok").bindings.len(), 6);
    }
}

/// Isolated nodes (no incident edges) never appear in any unit — they
/// cannot participate in a candidate — and sharding a fleet containing
/// them still matches the oracle.
#[test]
fn isolated_nodes_do_not_perturb_sharded_equality() {
    let mut jobs: Vec<QueryJob> = (0..2).map(|i| join_query(i, 3, 2)).collect();
    // Graft an isolated (edge-free) node into an existing part of each
    // graph; it can never participate in a candidate.
    for job in &mut jobs {
        job.graph.add_node(cdb_core::model::PartId(0), None, "lonely");
    }
    let (oracle_bind, oracle_json) = run_sharded(&jobs, 1, 1, 17, 0.05);
    let (bind, json) = run_sharded(&jobs, 4, 2, 17, 0.05);
    assert_eq!(bind, oracle_bind);
    assert_eq!(json, oracle_json);
}
