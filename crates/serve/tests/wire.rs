//! Wire-protocol integration tests: a real server on a real socket, a
//! real client, golden response fixtures, failure/disconnect semantics,
//! and the cross-thread-count stream determinism guarantee.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cdb_datagen::paper_example_dataset;
use cdb_obsv::json::Json;
use cdb_runtime::{FaultPlan, RetryPolicy};
use cdb_sched::Envelope;
use cdb_serve::{
    run_load, verify_streams, Client, LoadPlan, ServeConfig, StreamEvent, Submit, SubmitOutcome,
};

/// The walkthrough crowd join over the example catalog.
const JOIN_SQL: &str = "SELECT * FROM Researcher, University \
     WHERE Researcher.affiliation CROWDJOIN University.name";

fn example_server(cfg: ServeConfig) -> cdb_serve::Server {
    let (db, truth) = paper_example_dataset();
    cdb_serve::start("127.0.0.1:0", db, truth, cfg).expect("bind")
}

fn submit(tenant: &str, budget: u64) -> Submit {
    Submit {
        tenant: tenant.into(),
        sql: JOIN_SQL.into(),
        budget_cents: budget,
        deadline_rounds: None,
    }
}

/// Wait for a query to reach a terminal state (its stream being done).
fn wait_done(client: &mut Client, query: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = client.query_status(query).expect("status");
        if matches!(s.get("done"), Some(Json::Bool(true))) {
            return s;
        }
        assert!(Instant::now() < deadline, "query {query} never finished: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submit_stream_and_observe_end_to_end() {
    let server = example_server(ServeConfig::default());
    let mut client = Client::new(server.addr());

    // Catalog reflects the example schema.
    let catalog = client.catalog().expect("catalog");
    let tables = catalog.get("tables").and_then(Json::as_arr).expect("tables");
    assert!(tables.iter().any(|t| t.get("name").and_then(Json::as_str) == Some("Researcher")));

    let SubmitOutcome::Admitted { query } = client.submit(&submit("acme", 10_000)).expect("submit")
    else {
        panic!("expected admission");
    };
    let events = client.stream_events(query).expect("stream");
    let Some(StreamEvent::Done { cancelled: false, bindings, .. }) = events.last() else {
        panic!("stream must end in done: {events:?}");
    };
    assert!(*bindings > 0, "example join has answers");
    let streamed: usize = events
        .iter()
        .filter_map(|e| match e {
            StreamEvent::Round { new, .. } => Some(new.len()),
            _ => None,
        })
        .sum();
    assert_eq!(streamed as u64, *bindings, "every binding streamed exactly once");

    // Status, tenant ledger, stats, metrics all answer.
    let status = wait_done(&mut client, query);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    let tenant = client.tenant_status("acme").expect("tenant").expect("known tenant");
    assert_eq!(tenant.get("completed").and_then(Json::as_num), Some(1.0));
    let spent = tenant.get("spent_cents").and_then(Json::as_num).unwrap();
    let refunded = tenant.get("refunded_cents").and_then(Json::as_num).unwrap();
    assert!(spent > 0.0);
    assert_eq!(spent + refunded, {
        let est = status.get("estimate").expect("estimate");
        est.get("cost_cents_upper").and_then(Json::as_num).unwrap()
    });
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("completed").and_then(Json::as_num), Some(1.0));
    let prom = client.metrics().expect("metrics");
    cdb_obsv::validate_exposition(&prom).expect("exposition validates");
    assert!(prom.contains("cdb_serve_queries_total{state=\"completed\"} 1"));
    assert!(prom.contains("cdb_tasks_dispatched_total"), "runtime families re-exposed");

    // Replays of a finished stream are byte-identical.
    let replay = client.stream(query, |_| true).expect("replay");
    let events2: Vec<StreamEvent> =
        replay.iter().map(|l| StreamEvent::decode(l).unwrap()).collect();
    assert_eq!(events, events2);
    server.shutdown();
}

#[test]
fn golden_admission_responses() {
    let mut cfg = ServeConfig::default();
    cfg.tenants
        .insert("broke".into(), Envelope { budget_cents: 1, max_active: 8, queue_capacity: 4 });
    cfg.tenants.insert(
        "narrow".into(),
        Envelope { budget_cents: 100_000, max_active: 1, queue_capacity: 1 },
    );
    cfg.round_delay_ms = 20;
    let server = example_server(cfg);
    let mut client = Client::new(server.addr());

    // Budget-exceeded: the envelope can never cover the estimate.
    let resp = client
        .request("POST", "/queries", Some(&submit("broke", 10_000).encode()))
        .expect("request");
    assert_eq!(resp.status, 429);
    let estimate_cents = {
        // The estimate is deterministic; read it off a successful submit
        // on a healthy tenant rather than hard-coding dataset internals.
        let SubmitOutcome::Admitted { query } =
            client.submit(&submit("probe", 10_000)).expect("probe")
        else {
            panic!("probe admission");
        };
        let status = client.query_status(query).expect("status");
        status
            .get("estimate")
            .and_then(|e| e.get("cost_cents_upper"))
            .and_then(Json::as_num)
            .unwrap() as u64
    };
    assert_eq!(
        resp.body,
        format!(
            "{{\"decision\":\"rejected\",\"reason\":\"budget-exceeded\",\"needed_cents\":{estimate_cents},\"available_cents\":1}}"
        )
    );

    // Infeasible: the query's own budget cannot cover its envelope.
    let resp =
        client.request("POST", "/queries", Some(&submit("acme", 1).encode())).expect("request");
    assert_eq!(resp.status, 422);
    assert_eq!(resp.body, "{\"decision\":\"rejected\",\"reason\":\"infeasible\"}");

    // Queue-full: one active slot, one queue slot, third submission
    // bounces. The round delay keeps the first query running meanwhile.
    let first = client.submit(&submit("narrow", 10_000)).expect("s1");
    assert!(matches!(first, SubmitOutcome::Admitted { .. }));
    let second = client.submit(&submit("narrow", 10_000)).expect("s2");
    assert!(matches!(second, SubmitOutcome::Queued { position: 0, .. }), "{second:?}");
    let resp = client
        .request("POST", "/queries", Some(&submit("narrow", 10_000).encode()))
        .expect("request");
    assert_eq!(resp.status, 429);
    assert_eq!(resp.body, "{\"decision\":\"rejected\",\"reason\":\"queue-full\",\"capacity\":1}");

    // Malformed CQL is a 400 with a parse error, not a decision.
    let bad = Submit { sql: "SELEKT nonsense".into(), ..submit("acme", 10_000) };
    let resp = client.request("POST", "/queries", Some(&bad.encode())).expect("request");
    assert_eq!(resp.status, 400);
    assert!(resp.body.starts_with("{\"error\":"), "{}", resp.body);
    server.shutdown();
}

#[test]
fn mid_stream_failure_refunds_the_whole_hold() {
    let mut cfg = ServeConfig::default();
    // Every assignment abandoned, no retries: the first dispatched task
    // fails its query after the stream has started.
    cfg.runtime.fault_plan = FaultPlan::none().with_abandon(1.0);
    cfg.runtime.retry = RetryPolicy { deadline_ms: 1_000, max_retries: 0 };
    let server = example_server(cfg);
    let mut client = Client::new(server.addr());
    let SubmitOutcome::Admitted { query } = client.submit(&submit("acme", 10_000)).expect("submit")
    else {
        panic!("expected admission");
    };
    let events = client.stream_events(query).expect("stream");
    let Some(StreamEvent::Error { message }) = events.last() else {
        panic!("stream must end in error: {events:?}");
    };
    assert!(message.contains("retry budget"), "{message}");
    let status = wait_done(&mut client, query);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("failed"));
    let tenant = client.tenant_status("acme").expect("tenant").expect("known");
    assert_eq!(tenant.get("spent_cents").and_then(Json::as_num), Some(0.0), "failures do not bill");
    assert_eq!(tenant.get("failed").and_then(Json::as_num), Some(1.0));
    let committed = tenant.get("committed_cents").and_then(Json::as_num).unwrap();
    assert_eq!(committed, 0.0, "hold fully released");
    server.shutdown();
}

#[test]
fn client_disconnect_mid_stream_cancels_and_refunds() {
    let mut cfg = ServeConfig::default();
    // Serial rounds + a real per-round delay: the query streams slowly
    // enough that the disconnect lands mid-run.
    cfg.runtime.exec.parallel_rounds = false;
    cfg.round_delay_ms = 30;
    let server = example_server(cfg);
    let mut client = Client::new(server.addr());
    let SubmitOutcome::Admitted { query } = client.submit(&submit("acme", 10_000)).expect("submit")
    else {
        panic!("expected admission");
    };
    // Read until the first binding arrives, then hang up.
    let mut rounds_seen = 0;
    let lines = client
        .stream(query, |line| {
            if line.contains("\"event\":\"round\"") {
                rounds_seen += 1;
            }
            rounds_seen < 1
        })
        .expect("partial stream");
    assert!(rounds_seen >= 1, "saw a live round chunk: {lines:?}");

    let status = wait_done(&mut client, query);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("cancelled"));
    let tenant = client.tenant_status("acme").expect("tenant").expect("known");
    assert!(tenant.get("refunded_cents").and_then(Json::as_num).unwrap() > 0.0, "unspent refunded");
    assert_eq!(tenant.get("cancelled").and_then(Json::as_num), Some(1.0));
    assert_eq!(
        tenant.get("committed_cents").and_then(Json::as_num).unwrap(),
        tenant.get("spent_cents").and_then(Json::as_num).unwrap(),
        "ledger settles to exactly the partial spend",
    );
    // The retained stream ends with a cancelled `done` carrying the
    // partial results.
    let events = client.stream_events(query).expect("replay");
    let Some(StreamEvent::Done { cancelled: true, .. }) = events.last() else {
        panic!("cancelled stream terminal: {events:?}");
    };
    server.shutdown();
}

#[test]
fn explicit_cancel_before_running_fully_refunds() {
    let mut cfg = ServeConfig::default();
    cfg.tenants.insert(
        "narrow".into(),
        Envelope { budget_cents: 100_000, max_active: 1, queue_capacity: 8 },
    );
    cfg.round_delay_ms = 25;
    let server = example_server(cfg);
    let mut client = Client::new(server.addr());
    let SubmitOutcome::Admitted { query: running } =
        client.submit(&submit("narrow", 10_000)).expect("s1")
    else {
        panic!("first admitted");
    };
    let SubmitOutcome::Queued { query: waiting, .. } =
        client.submit(&submit("narrow", 10_000)).expect("s2")
    else {
        panic!("second queued");
    };
    assert!(client.cancel(waiting).expect("cancel"));
    let status = wait_done(&mut client, waiting);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("cancelled"));
    let events = client.stream_events(waiting).expect("stream");
    assert!(
        matches!(
            events.as_slice(),
            [StreamEvent::Done { cancelled: true, tasks: 0, refund_cents, .. }] if *refund_cents > 0
        ),
        "never-ran cancel is a single full-refund done chunk: {events:?}",
    );
    // The running query is unaffected and completes.
    let events = client.stream_events(running).expect("stream");
    assert!(matches!(events.last(), Some(StreamEvent::Done { cancelled: false, .. })));
    server.shutdown();
}

/// The wire determinism guarantee: 1-, 4-, and 8-worker servers produce
/// byte-identical NDJSON streams for the same seed and submission order.
#[test]
fn streams_are_byte_identical_across_worker_pool_sizes() {
    let mut baseline: Option<BTreeMap<u64, String>> = None;
    for exec_threads in [1usize, 4, 8] {
        let cfg = ServeConfig { exec_threads, ..ServeConfig::default() };
        let server = example_server(cfg);
        let mut client = Client::new(server.addr());
        let mut streams = BTreeMap::new();
        let ids: Vec<u64> = (0..6)
            .map(|_| match client.submit(&submit("acme", 10_000)).expect("submit") {
                SubmitOutcome::Admitted { query } | SubmitOutcome::Queued { query, .. } => query,
                r => panic!("unexpected rejection: {r:?}"),
            })
            .collect();
        for id in ids {
            let lines = client.stream(id, |_| true).expect("stream");
            streams.insert(id, lines.concat());
        }
        match &baseline {
            None => baseline = Some(streams),
            Some(b) => assert_eq!(b, &streams, "streams diverged at {exec_threads} exec threads"),
        }
        server.shutdown();
    }
}

/// A small in-test load run with the oracle check — the full ≥1k-query
/// sweep lives in `figures serve`, this pins the mechanism.
#[test]
fn loadgen_streams_match_the_oracle() {
    let cfg = ServeConfig { exec_threads: 4, ..ServeConfig::default() };
    let server = example_server(cfg.clone());
    let plan = LoadPlan {
        tenants: 3,
        queries_per_tenant: 6,
        sql: JOIN_SQL.into(),
        budget_cents: 10_000,
        submitters: 3,
        stream_workers: 6,
    };
    let report = run_load(server.addr(), &plan).expect("load");
    assert_eq!(report.completed, 18, "{report:?}");
    assert_eq!(report.failed + report.cancelled + report.rejected, 0);
    let (db, truth) = paper_example_dataset();
    let check = verify_streams(&db, &truth, &cfg, JOIN_SQL, &report.streams);
    assert!(check.clean(), "{check:?}");
    assert_eq!(check.queries, 18);
    assert!(check.bindings_total > 0);
    server.shutdown();
}
