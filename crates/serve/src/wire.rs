//! The wire protocol: typed encode/decode of every JSON envelope and
//! NDJSON stream line the service speaks, built on `cdb_obsv::json`
//! (the vendored `serde` stand-in cannot serialize or deserialize).
//!
//! Every encoder here is deterministic — fixed key order, no timestamps,
//! integer-exact numbers — because the per-query NDJSON stream is a
//! replay artifact: for a fixed server seed and query id it must be
//! byte-identical regardless of worker-pool size (the wire analogue of
//! the runtime's 1/4/8-thread replay guarantee).

use cdb_obsv::json::{parse, Json, JsonArray, JsonObject};
use cdb_sched::{AdmissionDecision, RejectReason};

/// A query submission, decoded from `POST /queries`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submit {
    /// Tenant the query bills against.
    pub tenant: String,
    /// The CQL text.
    pub sql: String,
    /// Money this query may spend, in cents.
    pub budget_cents: u64,
    /// Optional deadline in crowd rounds (maps to the executor's
    /// latency-constrained mode).
    pub deadline_rounds: Option<usize>,
}

impl Submit {
    /// Encode as the `POST /queries` body.
    pub fn encode(&self) -> String {
        let mut o = JsonObject::new()
            .str("tenant", &self.tenant)
            .str("sql", &self.sql)
            .u64("budget_cents", self.budget_cents);
        if let Some(d) = self.deadline_rounds {
            o = o.u64("deadline_rounds", d as u64);
        }
        o.finish()
    }

    /// Decode a `POST /queries` body. Errors are human-readable and end
    /// up in the `400` response.
    pub fn decode(body: &str) -> Result<Submit, String> {
        let j = parse(body)?;
        let tenant = j
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or("missing string field `tenant`")?
            .to_string();
        let sql =
            j.get("sql").and_then(Json::as_str).ok_or("missing string field `sql`")?.to_string();
        let budget_cents = j
            .get("budget_cents")
            .and_then(Json::as_num)
            .ok_or("missing numeric field `budget_cents`")? as u64;
        let deadline_rounds = match j.get("deadline_rounds") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_num().ok_or("`deadline_rounds` must be a number")? as usize),
        };
        Ok(Submit { tenant, sql, budget_cents, deadline_rounds })
    }
}

/// Encode an admission decision as the `POST /queries` response body.
/// Admitted and queued responses carry the assigned query id; rejected
/// ones carry the typed reason (and no id — the query never existed).
pub fn encode_decision(decision: &AdmissionDecision, query: Option<u64>) -> String {
    match decision {
        AdmissionDecision::Admitted => {
            let mut o = JsonObject::new().str("decision", "admitted");
            if let Some(q) = query {
                o = o.u64("query", q);
            }
            o.finish()
        }
        AdmissionDecision::Queued { position } => {
            let mut o = JsonObject::new().str("decision", "queued");
            if let Some(q) = query {
                o = o.u64("query", q);
            }
            o.u64("position", *position as u64).finish()
        }
        AdmissionDecision::Rejected(reason) => {
            let o = JsonObject::new().str("decision", "rejected").str("reason", reason.kind());
            match reason {
                RejectReason::BudgetExceeded { needed, available } => {
                    o.u64("needed_cents", *needed).u64("available_cents", *available).finish()
                }
                RejectReason::QueueFull { capacity } => {
                    o.u64("capacity", *capacity as u64).finish()
                }
                RejectReason::Infeasible => o.finish(),
            }
        }
    }
}

/// The HTTP status an admission decision travels under: `200` for
/// admitted/queued, `429` for backpressure (budget/queue), `422` for a
/// query that could never run.
pub fn decision_status(decision: &AdmissionDecision) -> u16 {
    match decision {
        AdmissionDecision::Admitted | AdmissionDecision::Queued { .. } => 200,
        AdmissionDecision::Rejected(RejectReason::Infeasible) => 422,
        AdmissionDecision::Rejected(_) => 429,
    }
}

/// One line of a query's NDJSON binding stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// Bindings that became answers in this crowd round (each binding is
    /// the node ids of its tuple vertices, in plan order). A binding
    /// appears in at most one `round` event per query.
    Round {
        /// 1-based crowd round (the final quality pass may repeat the
        /// last round number as a flush).
        round: u64,
        /// The newly-resolved bindings, in canonical (sorted) order.
        new: Vec<Vec<u64>>,
    },
    /// Bindings previously streamed that the final quality pass (EM +
    /// Bayesian recoloring) withdrew. Empty for the default
    /// majority-vote pipeline, whose coloring is monotone.
    Retract {
        /// The withdrawn bindings, in canonical order.
        bindings: Vec<Vec<u64>>,
    },
    /// Terminal line of a successful (or cancelled) query.
    Done {
        /// Crowd rounds consumed.
        rounds: u64,
        /// Distinct tasks asked.
        tasks: u64,
        /// Worker assignments collected.
        assignments: u64,
        /// Final answer-binding count (after retractions).
        bindings: u64,
        /// True when the query was cancelled mid-run (client disconnect
        /// or explicit cancel); the stream holds a prefix of the run.
        cancelled: bool,
        /// Cents released back to the tenant: the pessimistic admission
        /// hold minus what the run actually spent.
        refund_cents: u64,
    },
    /// Terminal line of a failed query (e.g. retry budget exhausted
    /// under fault injection). The admission hold is fully refunded.
    Error {
        /// The runtime error, rendered.
        message: String,
    },
}

fn bindings_json(bs: &[Vec<u64>]) -> String {
    let mut arr = JsonArray::new();
    for b in bs {
        let mut inner = JsonArray::new();
        for &n in b {
            inner = inner.u64(n);
        }
        arr = arr.raw(&inner.finish());
    }
    arr.finish()
}

fn decode_bindings(j: &Json) -> Result<Vec<Vec<u64>>, String> {
    let arr = j.as_arr().ok_or("bindings must be an array")?;
    arr.iter()
        .map(|b| {
            let inner = b.as_arr().ok_or("binding must be an array")?;
            inner
                .iter()
                .map(|n| {
                    n.as_num()
                        .map(|v| v as u64)
                        .ok_or_else(|| "node id must be a number".to_string())
                })
                .collect()
        })
        .collect()
}

impl StreamEvent {
    /// Encode as one NDJSON line, trailing newline included.
    pub fn encode(&self) -> String {
        let mut s = match self {
            StreamEvent::Round { round, new } => JsonObject::new()
                .str("event", "round")
                .u64("round", *round)
                .raw("new", &bindings_json(new))
                .finish(),
            StreamEvent::Retract { bindings } => JsonObject::new()
                .str("event", "retract")
                .raw("bindings", &bindings_json(bindings))
                .finish(),
            StreamEvent::Done { rounds, tasks, assignments, bindings, cancelled, refund_cents } => {
                JsonObject::new()
                    .str("event", "done")
                    .u64("rounds", *rounds)
                    .u64("tasks", *tasks)
                    .u64("assignments", *assignments)
                    .u64("bindings", *bindings)
                    .bool("cancelled", *cancelled)
                    .u64("refund_cents", *refund_cents)
                    .finish()
            }
            StreamEvent::Error { message } => {
                JsonObject::new().str("event", "error").str("message", message).finish()
            }
        };
        s.push('\n');
        s
    }

    /// Decode one NDJSON line (the client side).
    pub fn decode(line: &str) -> Result<StreamEvent, String> {
        let j = parse(line.trim_end())?;
        let num = |key: &str| -> Result<u64, String> {
            j.get(key).and_then(Json::as_num).map(|v| v as u64).ok_or(format!("missing `{key}`"))
        };
        match j.get("event").and_then(Json::as_str) {
            Some("round") => Ok(StreamEvent::Round {
                round: num("round")?,
                new: decode_bindings(j.get("new").ok_or("missing `new`")?)?,
            }),
            Some("retract") => Ok(StreamEvent::Retract {
                bindings: decode_bindings(j.get("bindings").ok_or("missing `bindings`")?)?,
            }),
            Some("done") => Ok(StreamEvent::Done {
                rounds: num("rounds")?,
                tasks: num("tasks")?,
                assignments: num("assignments")?,
                bindings: num("bindings")?,
                cancelled: matches!(j.get("cancelled"), Some(Json::Bool(true))),
                refund_cents: num("refund_cents")?,
            }),
            Some("error") => Ok(StreamEvent::Error {
                message: j
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("missing `message`")?
                    .to_string(),
            }),
            other => Err(format!("unknown stream event {other:?}")),
        }
    }
}

/// Encode an error body (`{"error": ...}`) for 4xx/5xx responses.
pub fn encode_error(message: &str) -> String {
    JsonObject::new().str("error", message).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrips() {
        let s = Submit {
            tenant: "acme".into(),
            sql: "SELECT * FROM T".into(),
            budget_cents: 500,
            deadline_rounds: Some(12),
        };
        assert_eq!(Submit::decode(&s.encode()).unwrap(), s);
        let no_deadline = Submit { deadline_rounds: None, ..s };
        assert_eq!(Submit::decode(&no_deadline.encode()).unwrap(), no_deadline);
    }

    #[test]
    fn submit_decode_reports_missing_fields() {
        assert!(Submit::decode("{\"tenant\":\"t\"}").unwrap_err().contains("sql"));
        assert!(Submit::decode("not json").is_err());
    }

    #[test]
    fn decision_bodies_are_stable() {
        assert_eq!(
            encode_decision(&AdmissionDecision::Admitted, Some(7)),
            "{\"decision\":\"admitted\",\"query\":7}"
        );
        assert_eq!(
            encode_decision(&AdmissionDecision::Queued { position: 2 }, Some(8)),
            "{\"decision\":\"queued\",\"query\":8,\"position\":2}"
        );
        let rej = AdmissionDecision::Rejected(RejectReason::BudgetExceeded {
            needed: 900,
            available: 100,
        });
        assert_eq!(
            encode_decision(&rej, None),
            "{\"decision\":\"rejected\",\"reason\":\"budget-exceeded\",\"needed_cents\":900,\"available_cents\":100}"
        );
        assert_eq!(decision_status(&rej), 429);
        assert_eq!(decision_status(&AdmissionDecision::Admitted), 200);
        assert_eq!(decision_status(&AdmissionDecision::Rejected(RejectReason::Infeasible)), 422);
    }

    #[test]
    fn stream_events_roundtrip() {
        let events = [
            StreamEvent::Round { round: 3, new: vec![vec![1, 5], vec![2, 6]] },
            StreamEvent::Retract { bindings: vec![vec![1, 5]] },
            StreamEvent::Done {
                rounds: 9,
                tasks: 40,
                assignments: 200,
                bindings: 3,
                cancelled: false,
                refund_cents: 12,
            },
            StreamEvent::Error { message: "retry budget exhausted".into() },
        ];
        for e in events {
            let line = e.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(StreamEvent::decode(&line).unwrap(), e);
        }
    }

    #[test]
    fn round_event_bytes_are_stable() {
        let e = StreamEvent::Round { round: 1, new: vec![vec![0, 9]] };
        assert_eq!(e.encode(), "{\"event\":\"round\",\"round\":1,\"new\":[[0,9]]}\n");
    }
}
