//! The `cdb-serve` server binary: load a generated dataset, bind the
//! HTTP listener, and serve CQL until killed.
//!
//! ```text
//! cdb-serve [--addr HOST:PORT] [--dataset example|paper|award|movie]
//!           [--scale N] [--seed S] [--exec-threads T]
//!           [--round-delay-ms MS] [--price-cents C]
//!           [--budget-cents B] [--max-active A] [--queue-capacity Q]
//! ```
//!
//! `--dataset example` (default) serves the paper's Table 1 walkthrough
//! catalog; the others generate the evaluation datasets at
//! `--scale`-divided cardinalities. Tenant envelopes default to
//! `--budget-cents/--max-active/--queue-capacity` for every tenant; see
//! `docs/OPERATIONS.md` for the full operating guide.

#![deny(missing_docs)]

use cdb_datagen::{
    award_dataset, movie_dataset, paper_dataset, paper_example_dataset, DatasetScale,
};
use cdb_sched::Envelope;
use cdb_serve::ServeConfig;

struct Args {
    addr: String,
    dataset: String,
    scale: usize,
    seed: u64,
    exec_threads: usize,
    round_delay_ms: u64,
    price_cents: u64,
    budget_cents: u64,
    max_active: usize,
    queue_capacity: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8744".into(),
        dataset: "example".into(),
        scale: 10,
        seed: 0,
        exec_threads: 4,
        round_delay_ms: 0,
        price_cents: 2,
        budget_cents: 100_000,
        max_active: 8,
        queue_capacity: 128,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--dataset" => args.dataset = val("--dataset"),
            "--scale" => args.scale = val("--scale").parse().expect("--scale"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--exec-threads" => {
                args.exec_threads = val("--exec-threads").parse().expect("--exec-threads")
            }
            "--round-delay-ms" => {
                args.round_delay_ms = val("--round-delay-ms").parse().expect("--round-delay-ms")
            }
            "--price-cents" => {
                args.price_cents = val("--price-cents").parse().expect("--price-cents")
            }
            "--budget-cents" => {
                args.budget_cents = val("--budget-cents").parse().expect("--budget-cents")
            }
            "--max-active" => args.max_active = val("--max-active").parse().expect("--max-active"),
            "--queue-capacity" => {
                args.queue_capacity = val("--queue-capacity").parse().expect("--queue-capacity")
            }
            other => {
                eprintln!("unknown flag {other}; see the crate docs");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let (db, truth) = match args.dataset.as_str() {
        "example" => paper_example_dataset(),
        name => {
            let scale = DatasetScale::paper_full().scaled(args.scale.max(1));
            let ds = match name {
                "paper" => paper_dataset(scale, args.seed),
                "award" => {
                    award_dataset(DatasetScale::award_full().scaled(args.scale.max(1)), args.seed)
                }
                "movie" => {
                    movie_dataset(DatasetScale::movie_full().scaled(args.scale.max(1)), args.seed)
                }
                other => {
                    eprintln!("unknown dataset {other} (example|paper|award|movie)");
                    std::process::exit(2);
                }
            };
            (ds.db, ds.truth)
        }
    };
    let mut cfg = ServeConfig::default();
    cfg.runtime.seed = args.seed;
    cfg.exec_threads = args.exec_threads;
    cfg.round_delay_ms = args.round_delay_ms;
    cfg.task_price_cents = args.price_cents;
    cfg.default_envelope = Envelope {
        budget_cents: args.budget_cents,
        max_active: args.max_active,
        queue_capacity: args.queue_capacity,
    };
    let server = cdb_serve::start(&args.addr, db, truth, cfg).expect("bind listener");
    eprintln!(
        "cdb-serve listening on http://{} (dataset {}, seed {}, {} exec threads)",
        server.addr(),
        args.dataset,
        args.seed,
        args.exec_threads,
    );
    eprintln!("endpoints: POST /queries · GET /queries/<id>/stream · GET /metrics · GET /catalog");
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
