//! The `cdb-loadgen` binary: hammer a running `cdb-serve` with
//! concurrent client queries and report what came back.
//!
//! ```text
//! cdb-loadgen [--addr HOST:PORT] [--tenants N] [--per-tenant Q]
//!             [--sql CQL] [--budget-cents B]
//!             [--submitters S] [--stream-workers W]
//!             [--oracle example]
//! ```
//!
//! Every accepted query's NDJSON stream is watched to its end; the
//! report (JSON on stdout) counts admitted/queued/rejected, completions,
//! the server's peak in-flight gauge, sustained QPS, and client-side
//! first-binding latency percentiles. With `--oracle example` (only
//! valid against a server running the default `example` dataset and
//! seed), every stream is additionally compared binding-for-binding
//! against an in-process re-execution — the zero-loss check.

#![deny(missing_docs)]

use cdb_datagen::paper_example_dataset;
use cdb_obsv::json::JsonObject;
use cdb_serve::{percentile, run_load, verify_streams, LoadPlan, ServeConfig};

/// The walkthrough join the example catalog serves.
const DEFAULT_SQL: &str = "SELECT * FROM Researcher, University \
     WHERE Researcher.affiliation CROWDJOIN University.name";

fn main() {
    let mut addr = "127.0.0.1:8744".to_string();
    let mut plan = LoadPlan {
        tenants: 8,
        queries_per_tenant: 16,
        sql: DEFAULT_SQL.into(),
        budget_cents: 10_000,
        submitters: 8,
        stream_workers: 16,
    };
    let mut oracle: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--addr" => addr = val("--addr"),
            "--tenants" => plan.tenants = val("--tenants").parse().expect("--tenants"),
            "--per-tenant" => {
                plan.queries_per_tenant = val("--per-tenant").parse().expect("--per-tenant")
            }
            "--sql" => plan.sql = val("--sql"),
            "--budget-cents" => {
                plan.budget_cents = val("--budget-cents").parse().expect("--budget-cents")
            }
            "--submitters" => plan.submitters = val("--submitters").parse().expect("--submitters"),
            "--stream-workers" => {
                plan.stream_workers = val("--stream-workers").parse().expect("--stream-workers")
            }
            "--oracle" => oracle = Some(val("--oracle")),
            other => {
                eprintln!("unknown flag {other}; see the crate docs");
                std::process::exit(2);
            }
        }
    }
    let addr: std::net::SocketAddr = addr.parse().expect("--addr must be HOST:PORT");
    eprintln!("loadgen: {} tenants x {} queries -> {addr}", plan.tenants, plan.queries_per_tenant);
    let report = run_load(addr, &plan).expect("load run");
    let mut out = JsonObject::new()
        .u64("submitted", report.submitted)
        .u64("admitted", report.admitted)
        .u64("queued", report.queued)
        .u64("rejected", report.rejected)
        .u64("completed", report.completed)
        .u64("failed", report.failed)
        .u64("cancelled", report.cancelled)
        .u64("peak_inflight", report.peak_inflight)
        .f64("wall_s", report.wall_secs)
        .f64("qps_per_s", report.qps)
        .f64("first_binding_p50_ms", percentile(&report.first_binding_ms, 0.50))
        .f64("first_binding_p99_ms", percentile(&report.first_binding_ms, 0.99));
    if oracle.as_deref() == Some("example") {
        let (db, truth) = paper_example_dataset();
        let check =
            verify_streams(&db, &truth, &ServeConfig::default(), &plan.sql, &report.streams);
        out = out
            .u64("oracle_bindings", check.bindings_total)
            .u64("oracle_lost", check.lost)
            .u64("oracle_duplicated", check.duplicated)
            .u64("oracle_spurious", check.spurious);
        if !check.clean() {
            eprintln!("ORACLE MISMATCH: {check:?}");
            println!("{}", out.finish());
            std::process::exit(1);
        }
    }
    println!("{}", out.finish());
}
