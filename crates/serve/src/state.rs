//! Server state: the shared catalog, the per-tenant admission ledgers,
//! the query registry with retained NDJSON chunks, and the execution
//! worker pool that drives [`cdb_runtime::execute_query`] with the
//! per-round streaming hook attached.
//!
//! # Determinism
//!
//! A query's NDJSON stream is a pure function of `(cfg.seed, query id,
//! sql)` — [`cdb_runtime::execute_query`] keys all randomness by
//! `(seed, id)`, the streaming hook only *observes* round deltas, and no
//! chunk carries wall-clock state. The worker-pool size changes which
//! thread runs a query, never its bytes, so 1/4/8-worker servers produce
//! byte-identical streams for the same submission order (the wire
//! analogue of the runtime's replay guarantee). Wall-clock timing lives
//! only in status/metrics responses, never in streams.
//!
//! # Money
//!
//! Each tenant's wallet is a [`cdb_sched::AdmissionController`] whose
//! envelope budget is the tenant's lifetime allowance. Admission commits
//! the query's pessimistic [`CostEstimate`] hold; completion releases
//! only the *unspent* part (the refund), so `committed_cents` retains
//! actual spend permanently — wallet semantics on the unmodified
//! scheduler API. Failed queries release their whole hold; cancelled
//! queries pay for what ran before the cancel landed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::Instant;

use cdb_core::executor::EdgeTruth;
use cdb_core::model::NodeId;
use cdb_core::{build_query_graph, CostEstimate, GraphBuildConfig, QueryGraph, QueryTruth};
use cdb_obsv::json::{JsonArray, JsonObject};
use cdb_runtime::{execute_query, QueryJob, RoundHook, RoundSink, RuntimeConfig, RuntimeMetrics};
use cdb_sched::{AdmissionController, AdmissionDecision, Envelope, QueryRequest};

use crate::wire::{StreamEvent, Submit};

/// Everything that configures a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base runtime configuration: seed, worker pool, market, faults,
    /// retry, executor strategies. `runtime.threads` is ignored — the
    /// service schedules queries on its own [`exec_threads`] pool.
    ///
    /// [`exec_threads`]: ServeConfig::exec_threads
    pub runtime: RuntimeConfig,
    /// Graph construction (similarity function, ε).
    pub build: GraphBuildConfig,
    /// Price per assignment, in cents (feeds the admission estimate and
    /// the actual-spend accounting).
    pub task_price_cents: u64,
    /// Execution worker threads — concurrently *running* queries.
    pub exec_threads: usize,
    /// Envelope for tenants without an explicit entry in
    /// [`tenants`](ServeConfig::tenants).
    pub default_envelope: Envelope,
    /// Per-tenant envelope overrides, by tenant name.
    pub tenants: BTreeMap<String, Envelope>,
    /// Real milliseconds to hold each crowd round (0 = free-running).
    /// The simulated crowd answers in virtual time, so an unthrottled
    /// query finishes in microseconds; the throttle makes live streaming
    /// and sustained in-flight load observable, like a real crowd would.
    pub round_delay_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            runtime: RuntimeConfig::default(),
            build: GraphBuildConfig::default(),
            task_price_cents: 2,
            exec_threads: 4,
            default_envelope: Envelope {
                budget_cents: 100_000,
                max_active: 8,
                queue_capacity: 128,
            },
            tenants: BTreeMap::new(),
            round_delay_ms: 0,
        }
    }
}

/// Lifecycle of one submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryState {
    /// Waiting in the tenant's admission queue (no hold committed yet).
    Queued,
    /// Admitted (hold committed), waiting for an execution worker.
    Admitted,
    /// Executing.
    Running,
    /// Finished normally; stream is complete.
    Done,
    /// Failed at runtime (fault injection / retry exhaustion); hold
    /// fully refunded.
    Failed,
    /// Cancelled (explicit or client disconnect); partial stream, unspent
    /// hold refunded.
    Cancelled,
}

impl QueryState {
    /// Stable lowercase label for wire responses.
    pub fn label(self) -> &'static str {
        match self {
            QueryState::Queued => "queued",
            QueryState::Admitted => "admitted",
            QueryState::Running => "running",
            QueryState::Done => "done",
            QueryState::Failed => "failed",
            QueryState::Cancelled => "cancelled",
        }
    }
}

/// One tenant's ledger.
struct Tenant {
    admission: AdmissionController,
    spent_cents: u64,
    refunded_cents: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
}

/// One submitted query's registry entry.
struct QueryEntry {
    tenant: String,
    state: QueryState,
    estimate: CostEstimate,
    /// `BUDGET n` from the CQL text (task cap), if any.
    task_budget: Option<usize>,
    deadline_rounds: Option<usize>,
    /// The prepared plan, taken by the worker that runs the query.
    plan: Option<(QueryGraph, EdgeTruth)>,
    /// Retained NDJSON lines — the stream replay artifact.
    chunks: Vec<String>,
    /// True once the terminal chunk is in `chunks`.
    done: bool,
    cancel: Arc<AtomicBool>,
    /// Bindings already streamed (for retract computation and the
    /// no-duplicates guarantee).
    streamed: BTreeSet<Vec<u64>>,
    admitted_at: Option<Instant>,
    first_binding_ms: Option<f64>,
}

/// Registry + ledgers + run queue, under one lock.
struct Inner {
    next_id: u64,
    queries: BTreeMap<u64, QueryEntry>,
    tenants: BTreeMap<String, Tenant>,
    run_queue: VecDeque<u64>,
    inflight: usize,
    peak_inflight: usize,
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
    /// Server-side admission→first-binding latencies, real ms.
    first_binding_ms: Vec<f64>,
}

/// The shared server state. One instance per server; handlers and
/// execution workers share it behind an `Arc`.
pub struct ServerState {
    db: cdb_storage::Database,
    truth: QueryTruth,
    cfg: ServeConfig,
    metrics: Arc<RuntimeMetrics>,
    inner: Mutex<Inner>,
    /// Wakes execution workers (run-queue pushes, shutdown).
    wake: Condvar,
    /// Wakes stream subscribers (chunk appends, terminal states).
    chunks: Condvar,
    shutdown: AtomicBool,
    hook: OnceLock<RoundHook>,
}

/// The [`RoundSink`] the server installs: forwards each query's round
/// delta into its registry entry as a wire chunk.
struct ServeSink(Weak<ServerState>);

impl RoundSink for ServeSink {
    fn on_round(&self, query: u64, round: u64, new_bindings: &[Vec<NodeId>]) -> bool {
        let Some(state) = self.0.upgrade() else { return false };
        state.on_round(query, round, new_bindings)
    }
}

impl ServerState {
    /// Build the state for a catalog + ground truth + config.
    pub fn new(db: cdb_storage::Database, truth: QueryTruth, cfg: ServeConfig) -> Arc<ServerState> {
        let state = Arc::new(ServerState {
            db,
            truth,
            cfg,
            metrics: Arc::new(RuntimeMetrics::new()),
            inner: Mutex::new(Inner {
                next_id: 0,
                queries: BTreeMap::new(),
                tenants: BTreeMap::new(),
                run_queue: VecDeque::new(),
                inflight: 0,
                peak_inflight: 0,
                submitted: 0,
                completed: 0,
                failed: 0,
                cancelled: 0,
                rejected: 0,
                first_binding_ms: Vec::new(),
            }),
            wake: Condvar::new(),
            chunks: Condvar::new(),
            shutdown: AtomicBool::new(false),
            hook: OnceLock::new(),
        });
        let sink: Arc<dyn RoundSink> = Arc::new(ServeSink(Arc::downgrade(&state)));
        state.hook.set(RoundHook::new(sink)).expect("hook set once");
        state
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The shared runtime metrics (crowd counters, histograms).
    pub fn metrics(&self) -> &Arc<RuntimeMetrics> {
        &self.metrics
    }

    /// True once [`stop`](Self::stop) ran.
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Ask workers and subscribers to wind down.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _inner = self.inner.lock().unwrap();
        self.wake.notify_all();
        self.chunks.notify_all();
    }

    // ---- submission ----------------------------------------------------

    /// Handle one submission: plan, estimate, admit. Returns the decision,
    /// the assigned query id (admitted/queued only), and the HTTP body.
    pub fn submit(&self, req: &Submit) -> Result<(AdmissionDecision, Option<u64>), String> {
        // Plan outside the lock — the catalog is immutable.
        let stmt = cdb_cql::parse(&req.sql).map_err(|e| e.to_string())?;
        let cdb_cql::Statement::Select(q) = stmt else {
            return Err("only SELECT statements are served; see docs/CQL.md".into());
        };
        let analyzed = cdb_cql::analyze_select(&q, &self.db).map_err(|e| e.to_string())?;
        if analyzed.group_by.is_some() || analyzed.order_by.is_some() {
            return Err("GROUP BY/ORDER BY CROWD post-ops are not served over the wire".into());
        }
        let graph = build_query_graph(&analyzed, &self.db, &self.cfg.build);
        let truth = self.truth.edge_truth(&graph);
        let estimate = cdb_core::cost::estimate::estimate(
            &graph,
            self.cfg.runtime.exec.redundancy,
            self.cfg.task_price_cents,
        );

        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let tenant = inner.tenants.entry(req.tenant.clone()).or_insert_with(|| Tenant {
            admission: AdmissionController::new(
                self.cfg.tenants.get(&req.tenant).copied().unwrap_or(self.cfg.default_envelope),
            ),
            spent_cents: 0,
            refunded_cents: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            rejected: 0,
        });
        let id = inner.next_id;
        let decision = tenant.admission.offer(QueryRequest {
            query: id,
            estimate,
            budget_cents: req.budget_cents,
            deadline_rounds: req.deadline_rounds,
        });
        if let AdmissionDecision::Rejected(_) = decision {
            tenant.rejected += 1;
            inner.rejected += 1;
            return Ok((decision, None));
        }
        inner.next_id += 1;
        let state = if matches!(decision, AdmissionDecision::Admitted) {
            QueryState::Admitted
        } else {
            QueryState::Queued
        };
        inner.queries.insert(
            id,
            QueryEntry {
                tenant: req.tenant.clone(),
                state,
                estimate,
                task_budget: analyzed.budget,
                deadline_rounds: req.deadline_rounds,
                plan: Some((graph, truth)),
                chunks: Vec::new(),
                done: false,
                cancel: Arc::new(AtomicBool::new(false)),
                streamed: BTreeSet::new(),
                admitted_at: if state == QueryState::Admitted {
                    Some(Instant::now())
                } else {
                    None
                },
                first_binding_ms: None,
            },
        );
        inner.submitted += 1;
        inner.inflight += 1;
        inner.peak_inflight = inner.peak_inflight.max(inner.inflight);
        if state == QueryState::Admitted {
            inner.run_queue.push_back(id);
            self.wake.notify_one();
        }
        Ok((decision, Some(id)))
    }

    // ---- execution workers ---------------------------------------------

    /// One execution worker's loop: pop admitted queries and run them
    /// until [`stop`](Self::stop).
    pub fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if self.stopping() {
                        return;
                    }
                    if let Some(id) = inner.run_queue.pop_front() {
                        let entry = inner.queries.get_mut(&id).expect("queued query exists");
                        if entry.done {
                            // Cancelled while waiting for a worker; the
                            // cancel path already settled the ledger.
                            continue;
                        }
                        entry.state = QueryState::Running;
                        let (graph, truth) = entry.plan.take().expect("plan not yet taken");
                        let mut cfg = self.cfg.runtime.clone();
                        cfg.exec.budget = entry.task_budget.or(cfg.exec.budget);
                        if entry.deadline_rounds.is_some() {
                            cfg.exec.max_rounds = entry.deadline_rounds;
                        }
                        cfg.round_sink = Some(self.hook.get().expect("hook installed").clone());
                        break Some((id, graph, truth, cfg));
                    }
                    inner = self.wake.wait(inner).unwrap();
                }
            };
            let Some((id, graph, truth, cfg)) = job else { return };
            let (_, result) =
                execute_query(&cfg, &self.metrics, QueryJob { id, graph, truth }, None);
            self.finalize(id, result);
        }
    }

    /// The streaming hook: append this round's delta as a wire chunk.
    /// Returns false to cancel the query.
    fn on_round(&self, query: u64, round: u64, new_bindings: &[Vec<NodeId>]) -> bool {
        if self.stopping() {
            return false;
        }
        if self.cfg.round_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.cfg.round_delay_ms));
        }
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let Some(entry) = inner.queries.get_mut(&query) else { return false };
        if entry.cancel.load(Ordering::SeqCst) {
            return false;
        }
        if !new_bindings.is_empty() {
            if entry.first_binding_ms.is_none() {
                let ms =
                    entry.admitted_at.map(|t| t.elapsed().as_secs_f64() * 1e3).unwrap_or_default();
                entry.first_binding_ms = Some(ms);
                inner.first_binding_ms.push(ms);
            }
            let new: Vec<Vec<u64>> =
                new_bindings.iter().map(|b| b.iter().map(|n| n.0 as u64).collect()).collect();
            for b in &new {
                debug_assert!(!entry.streamed.contains(b), "binding streamed twice");
                entry.streamed.insert(b.clone());
            }
            entry.chunks.push(StreamEvent::Round { round, new }.encode());
            self.chunks.notify_all();
        }
        !entry.cancel.load(Ordering::SeqCst)
    }

    /// Settle one finished query: retractions, terminal chunk, ledger.
    fn finalize(
        &self,
        id: u64,
        result: Result<cdb_runtime::QueryResult, cdb_runtime::RuntimeError>,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let entry = inner.queries.get_mut(&id).expect("finalizing a known query");
        let committed = entry.estimate.cost_cents_upper;
        let tenant_name = entry.tenant.clone();
        let (released, terminal) = match result {
            Ok(qr) => {
                let final_bindings: BTreeSet<Vec<u64>> =
                    qr.bindings.iter().map(|b| b.iter().map(|n| n.0 as u64).collect()).collect();
                let retracted: Vec<Vec<u64>> =
                    entry.streamed.difference(&final_bindings).cloned().collect();
                if !retracted.is_empty() {
                    entry.chunks.push(StreamEvent::Retract { bindings: retracted }.encode());
                }
                let redundancy = self.cfg.runtime.exec.redundancy as u64;
                let actual =
                    committed.min(qr.tasks_asked as u64 * redundancy * self.cfg.task_price_cents);
                let refund = committed - actual;
                let cancelled = qr.cancelled || entry.cancel.load(Ordering::SeqCst);
                entry.chunks.push(
                    StreamEvent::Done {
                        rounds: qr.rounds as u64,
                        tasks: qr.tasks_asked as u64,
                        assignments: qr.assignments as u64,
                        bindings: final_bindings.len() as u64,
                        cancelled,
                        refund_cents: refund,
                    }
                    .encode(),
                );
                entry.state = if cancelled { QueryState::Cancelled } else { QueryState::Done };
                (Spend { actual, refund }, entry.state)
            }
            Err(e) => {
                entry.chunks.push(StreamEvent::Error { message: e.to_string() }.encode());
                entry.state = QueryState::Failed;
                (Spend { actual: 0, refund: committed }, QueryState::Failed)
            }
        };
        entry.done = true;
        inner.inflight -= 1;
        match terminal {
            QueryState::Done => inner.completed += 1,
            QueryState::Failed => inner.failed += 1,
            _ => inner.cancelled += 1,
        }
        Self::settle_tenant(inner, &tenant_name, released, terminal);
        Self::promote(inner, &tenant_name, &self.wake);
        self.chunks.notify_all();
    }

    /// Release a completed query's hold, keeping actual spend committed.
    fn settle_tenant(inner: &mut Inner, tenant: &str, spend: Spend, terminal: QueryState) {
        let t = inner.tenants.get_mut(tenant).expect("tenant exists");
        t.admission.complete(&CostEstimate {
            tasks_upper: 0,
            rounds_upper: 0,
            cost_cents_upper: spend.refund,
        });
        t.spent_cents += spend.actual;
        t.refunded_cents += spend.refund;
        match terminal {
            QueryState::Done => t.completed += 1,
            QueryState::Failed => t.failed += 1,
            _ => t.cancelled += 1,
        }
    }

    /// Promote admission-queued queries into freed slots. Queries that
    /// were cancelled while queued release their freshly-committed hold
    /// immediately and free the slot for the next in line.
    fn promote(inner: &mut Inner, tenant: &str, wake: &Condvar) {
        loop {
            let wave = {
                let t = inner.tenants.get_mut(tenant).expect("tenant exists");
                t.admission.admit_wave()
            };
            if wave.is_empty() {
                return;
            }
            for req in wave {
                let entry = inner.queries.get_mut(&req.query).expect("queued query exists");
                if entry.done {
                    // Cancelled while admission-queued: nothing to run.
                    let t = inner.tenants.get_mut(tenant).expect("tenant exists");
                    t.admission.complete(&req.estimate);
                    continue;
                }
                entry.state = QueryState::Admitted;
                entry.admitted_at = Some(Instant::now());
                inner.run_queue.push_back(req.query);
                wake.notify_one();
            }
        }
    }

    // ---- cancellation ---------------------------------------------------

    /// Cancel a query (explicit request or client disconnect). Idempotent;
    /// running queries settle asynchronously when the hook observes the
    /// flag. Returns false for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let Some(entry) = inner.queries.get_mut(&id) else { return false };
        entry.cancel.store(true, Ordering::SeqCst);
        match entry.state {
            QueryState::Running | QueryState::Done | QueryState::Failed | QueryState::Cancelled => {
            }
            QueryState::Admitted | QueryState::Queued => {
                // Never ran: full refund. An Admitted query's hold is
                // released here; a Queued query committed nothing (its
                // eventual promotion is unwound in `promote`).
                let was_admitted = entry.state == QueryState::Admitted;
                let committed = entry.estimate.cost_cents_upper;
                entry.state = QueryState::Cancelled;
                entry.chunks.push(
                    StreamEvent::Done {
                        rounds: 0,
                        tasks: 0,
                        assignments: 0,
                        bindings: 0,
                        cancelled: true,
                        refund_cents: committed,
                    }
                    .encode(),
                );
                entry.done = true;
                let tenant_name = entry.tenant.clone();
                let estimate = entry.estimate;
                inner.inflight -= 1;
                inner.cancelled += 1;
                let t = inner.tenants.get_mut(&tenant_name).expect("tenant exists");
                if was_admitted {
                    t.admission.complete(&estimate);
                    t.refunded_cents += committed;
                    t.cancelled += 1;
                    Self::promote(inner, &tenant_name, &self.wake);
                } else {
                    t.cancelled += 1;
                }
                self.chunks.notify_all();
            }
        }
        true
    }

    // ---- reads ----------------------------------------------------------

    /// Copy the retained stream chunks from `from` onward, plus whether
    /// the stream is complete. `None` for unknown ids.
    pub fn chunks_from(&self, id: u64, from: usize) -> Option<(Vec<String>, bool)> {
        let inner = self.inner.lock().unwrap();
        let entry = inner.queries.get(&id)?;
        Some((entry.chunks[from.min(entry.chunks.len())..].to_vec(), entry.done))
    }

    /// Block until query `id` has more than `from` chunks, is done, or the
    /// server stops. Returns the same shape as [`chunks_from`].
    ///
    /// [`chunks_from`]: Self::chunks_from
    pub fn wait_chunks(&self, id: u64, from: usize) -> Option<(Vec<String>, bool)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            {
                let entry = inner.queries.get(&id)?;
                if entry.done || entry.chunks.len() > from {
                    return Some((
                        entry.chunks[from.min(entry.chunks.len())..].to_vec(),
                        entry.done,
                    ));
                }
            }
            if self.stopping() {
                return Some((Vec::new(), false));
            }
            let (guard, _timeout) =
                self.chunks.wait_timeout(inner, std::time::Duration::from_millis(200)).unwrap();
            inner = guard;
        }
    }

    /// Status JSON for `GET /queries/{id}`; `None` for unknown ids.
    pub fn query_status(&self, id: u64) -> Option<String> {
        let inner = self.inner.lock().unwrap();
        let entry = inner.queries.get(&id)?;
        let mut o = JsonObject::new()
            .u64("query", id)
            .str("tenant", &entry.tenant)
            .str("state", entry.state.label())
            .bool("done", entry.done)
            .u64("chunks", entry.chunks.len() as u64)
            .u64("bindings_streamed", entry.streamed.len() as u64)
            .raw(
                "estimate",
                &JsonObject::new()
                    .u64("tasks_upper", entry.estimate.tasks_upper as u64)
                    .u64("rounds_upper", entry.estimate.rounds_upper as u64)
                    .u64("cost_cents_upper", entry.estimate.cost_cents_upper)
                    .finish(),
            );
        if let Some(ms) = entry.first_binding_ms {
            o = o.f64("first_binding_ms", ms);
        }
        Some(o.finish())
    }

    /// Budget/ledger JSON for `GET /tenants/{name}`; `None` if the tenant
    /// has never submitted.
    pub fn tenant_status(&self, name: &str) -> Option<String> {
        let inner = self.inner.lock().unwrap();
        let t = inner.tenants.get(name)?;
        let env = *t.admission.envelope();
        Some(
            JsonObject::new()
                .str("tenant", name)
                .u64("budget_cents", env.budget_cents)
                .u64("committed_cents", t.admission.committed_cents())
                .u64(
                    "available_cents",
                    env.budget_cents.saturating_sub(t.admission.committed_cents()),
                )
                .u64("max_active", env.max_active as u64)
                .u64("queue_capacity", env.queue_capacity as u64)
                .u64("active", t.admission.active() as u64)
                .u64("queued", t.admission.queued() as u64)
                .u64("spent_cents", t.spent_cents)
                .u64("refunded_cents", t.refunded_cents)
                .u64("completed", t.completed)
                .u64("failed", t.failed)
                .u64("cancelled", t.cancelled)
                .u64("rejected", t.rejected)
                .finish(),
        )
    }

    /// Server-wide counters for `GET /stats`.
    pub fn stats(&self) -> String {
        let inner = self.inner.lock().unwrap();
        JsonObject::new()
            .u64("inflight", inner.inflight as u64)
            .u64("peak_inflight", inner.peak_inflight as u64)
            .u64("submitted", inner.submitted)
            .u64("completed", inner.completed)
            .u64("failed", inner.failed)
            .u64("cancelled", inner.cancelled)
            .u64("rejected", inner.rejected)
            .u64("exec_threads", self.cfg.exec_threads as u64)
            .finish()
    }

    /// Catalog JSON for `GET /catalog`.
    pub fn catalog(&self) -> String {
        let mut tables = JsonArray::new();
        for t in self.db.tables() {
            let mut cols = JsonArray::new();
            for c in t.schema().columns() {
                cols = cols.raw(
                    &JsonObject::new()
                        .str("name", &c.name)
                        .str("type", c.ty.name())
                        .bool("crowd", c.crowd)
                        .finish(),
                );
            }
            tables = tables.raw(
                &JsonObject::new()
                    .str("name", t.name())
                    .bool("crowd", t.is_crowd())
                    .u64("rows", t.row_count() as u64)
                    .raw("columns", &cols.finish())
                    .finish(),
            );
        }
        JsonObject::new().raw("tables", &tables.finish()).finish()
    }

    /// Prometheus exposition for `GET /metrics`: the runtime families
    /// re-exposed verbatim, plus the serve layer's own.
    pub fn prometheus(&self) -> String {
        let mut text = self.metrics.snapshot().to_prometheus();
        let mut p = cdb_obsv::PromText::new();
        let inner = self.inner.lock().unwrap();
        p.counter_family(
            "cdb_serve_queries_total",
            "Queries by terminal state (rejected ones never ran)",
            &[
                (vec![("state", "completed")], inner.completed),
                (vec![("state", "failed")], inner.failed),
                (vec![("state", "cancelled")], inner.cancelled),
                (vec![("state", "rejected")], inner.rejected),
            ],
        );
        p.gauge(
            "cdb_serve_inflight",
            "Queries submitted but not yet terminal",
            inner.inflight as f64,
        );
        p.gauge(
            "cdb_serve_inflight_peak",
            "High-water mark of concurrently in-flight queries",
            inner.peak_inflight as f64,
        );
        p.gauge(
            "cdb_serve_tenants",
            "Tenants that have submitted at least once",
            inner.tenants.len() as f64,
        );
        let committed: u64 = inner.tenants.values().map(|t| t.admission.committed_cents()).sum();
        p.gauge(
            "cdb_serve_committed_cents",
            "Cents held or spent across all tenant envelopes",
            committed as f64,
        );
        // Admission→first-binding latency, fixed log-ish buckets (ms);
        // the open final bucket catches throttled long-tail queries.
        let uppers = [1.0, 5.0, 25.0, 100.0, 500.0, 2_500.0, 10_000.0, f64::INFINITY];
        let mut counts = [0u64; 8];
        let mut sum = 0.0;
        for &ms in &inner.first_binding_ms {
            sum += ms;
            let i = uppers.iter().position(|&u| ms <= u).expect("`+Inf` catches everything");
            counts[i] += 1;
        }
        p.histogram(
            "cdb_serve_first_binding_ms",
            "Admission to first streamed binding, real milliseconds",
            &uppers,
            &counts,
            sum,
        );
        drop(inner);
        text.push_str(&p.finish());
        text
    }
}

/// How a finished query's hold splits.
#[derive(Clone, Copy)]
struct Spend {
    actual: u64,
    refund: u64,
}
