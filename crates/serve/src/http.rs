//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! the CQL service: request parsing with `Content-Length` bodies,
//! keep-alive, fixed-length responses, and chunked transfer encoding for
//! the NDJSON binding streams.
//!
//! This is deliberately not a general web server. It parses exactly what
//! [`crate::client`] and `cdb-cli` emit, rejects everything else with a
//! `400`, and never buffers an unbounded body (requests are capped at
//! [`MAX_BODY`]).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server will buffer (1 MiB — CQL text and
/// small JSON envelopes only).
pub const MAX_BODY: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped (`/queries/7/stream`).
    pub path: String,
    /// Raw query string after `?`, if any (unparsed; the protocol does
    /// not use it, but a client sending one should not break routing).
    pub query: Option<String>,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// True when the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or an empty string if it is not valid UTF-8.
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }
}

/// Read one request off the connection. `Ok(None)` means the peer closed
/// cleanly between requests (normal keep-alive shutdown); malformed
/// framing is an `InvalidData` error the caller answers with a `400`.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end();
    let mut parts = line.splitn(3, ' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t, v),
        _ => return Err(bad(format!("malformed request line: {line:?}"))),
    };
    let _ = version;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers".to_string()));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(bad(format!("malformed header: {h:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| bad(format!("bad content-length: {value:?}")))?;
            if content_length > MAX_BODY {
                return Err(bad(format!("body too large: {content_length}")));
            }
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method: method.to_string(), path, query, headers, body }))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reason phrase for the handful of status codes the protocol uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a fixed-length response.
pub fn respond(
    w: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        conn,
    )?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer-encoding response in progress: one NDJSON line per
/// chunk, flushed immediately so the client sees bindings as rounds
/// resolve. Dropping without [`finish`](ChunkedWriter::finish) leaves the
/// stream truncated (how a cancelled query's stream ends).
pub struct ChunkedWriter<'a> {
    w: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the response head and return the chunk writer. Chunked
    /// streams always close the connection when done — the stream *is*
    /// the conversation.
    pub fn start(w: &'a mut TcpStream, content_type: &str) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Send one chunk (a complete NDJSON line, `\n` included) and flush.
    /// A write error here is how the server learns the client went away.
    pub fn chunk(&mut self, data: &str) -> io::Result<()> {
        write!(self.w, "{:x}\r\n{}\r\n", data.len(), data)?;
        self.w.flush()
    }

    /// Terminate the stream (zero-length chunk).
    pub fn finish(self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let c = TcpStream::connect(addr).unwrap();
        let (s, _) = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn parses_a_post_with_body() {
        let (mut c, s) = pair();
        c.write_all(b"POST /queries HTTP/1.1\r\nContent-Length: 4\r\nX-T: v\r\n\r\nbody").unwrap();
        let mut r = BufReader::new(s);
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/queries");
        assert_eq!(req.body_str(), "body");
        assert_eq!(req.header("x-t"), Some("v"));
        assert!(req.keep_alive());
    }

    #[test]
    fn strips_query_string_and_reads_eof_as_none() {
        let (mut c, s) = pair();
        c.write_all(b"GET /healthz?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        drop(c);
        let mut r = BufReader::new(s);
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert!(!req.keep_alive());
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_bodies() {
        let (mut c, s) = pair();
        let head = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        c.write_all(head.as_bytes()).unwrap();
        let mut r = BufReader::new(s);
        assert!(read_request(&mut r).is_err());
    }

    #[test]
    fn chunked_stream_roundtrips() {
        let (c, mut s) = pair();
        let t = std::thread::spawn(move || {
            let mut w = ChunkedWriter::start(&mut s, "application/x-ndjson").unwrap();
            w.chunk("{\"a\":1}\n").unwrap();
            w.chunk("{\"b\":2}\n").unwrap();
            w.finish().unwrap();
        });
        let mut buf = String::new();
        let mut r = BufReader::new(c);
        r.read_to_string(&mut buf).unwrap();
        t.join().unwrap();
        assert!(buf.contains("Transfer-Encoding: chunked"));
        assert!(buf.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(buf.ends_with("0\r\n\r\n"));
    }
}
