//! A blocking HTTP client for the service — used by `cdb-cli`, the load
//! generator, and the wire-protocol tests. One [`Client`] wraps one
//! keep-alive connection for unary calls; streams open their own
//! connection (the server closes chunked connections when the stream
//! ends).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use cdb_obsv::json::{parse, Json};

use crate::wire::{StreamEvent, Submit};

/// One unary response: status code and body text.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body, UTF-8 decoded.
    pub body: String,
}

impl HttpResponse {
    /// Parse the body as JSON (the whole protocol is JSON bodies).
    pub fn json(&self) -> Result<Json, String> {
        parse(&self.body)
    }
}

/// The decoded outcome of a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Running now.
    Admitted {
        /// Assigned query id.
        query: u64,
    },
    /// Waiting for a slot; will run without further client action.
    Queued {
        /// Assigned query id.
        query: u64,
        /// Queue position at decision time (0 = next).
        position: u64,
    },
    /// Turned away; no query id exists.
    Rejected {
        /// Typed reason label (`budget-exceeded`, `queue-full`,
        /// `infeasible`).
        reason: String,
        /// The full response body (reason-specific detail fields).
        detail: String,
    },
}

/// A keep-alive connection to the server for unary requests.
pub struct Client {
    addr: SocketAddr,
    conn: Option<TcpStream>,
}

impl Client {
    /// A client for the given server address (connects lazily).
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, conn: None }
    }

    /// The server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn conn(&mut self) -> io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            let conn = TcpStream::connect(self.addr)?;
            conn.set_nodelay(true)?;
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// One unary request. Retries once on a fresh connection if the
    /// kept-alive one died (normal when the server idled us out).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.conn = None;
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let addr = self.addr;
        let conn = self.conn()?;
        let body = body.unwrap_or("");
        write!(
            conn,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        conn.flush()?;
        let mut reader = BufReader::new(conn.try_clone()?);
        let (status, headers) = read_head(&mut reader)?;
        let resp = read_body(&mut reader, &headers)?;
        if header(&headers, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
            self.conn = None;
        }
        Ok(HttpResponse { status, body: resp })
    }

    /// Submit a query and decode the admission decision.
    pub fn submit(&mut self, submit: &Submit) -> io::Result<SubmitOutcome> {
        let resp = self.request("POST", "/queries", Some(&submit.encode()))?;
        let j = resp.json().map_err(invalid)?;
        let query = j.get("query").and_then(Json::as_num).map(|v| v as u64);
        match j.get("decision").and_then(Json::as_str) {
            Some("admitted") => Ok(SubmitOutcome::Admitted {
                query: query.ok_or_else(|| invalid("admitted without id".to_string()))?,
            }),
            Some("queued") => Ok(SubmitOutcome::Queued {
                query: query.ok_or_else(|| invalid("queued without id".to_string()))?,
                position: j.get("position").and_then(Json::as_num).unwrap_or_default() as u64,
            }),
            Some("rejected") => Ok(SubmitOutcome::Rejected {
                reason: j.get("reason").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                detail: resp.body.clone(),
            }),
            _ => Err(invalid(format!("bad submit response: {}", resp.body))),
        }
    }

    /// `GET /queries/{id}` as parsed JSON.
    pub fn query_status(&mut self, query: u64) -> io::Result<Json> {
        let resp = self.request("GET", &format!("/queries/{query}"), None)?;
        resp.json().map_err(invalid)
    }

    /// `POST /queries/{id}/cancel`; true when the server knew the query.
    pub fn cancel(&mut self, query: u64) -> io::Result<bool> {
        Ok(self.request("POST", &format!("/queries/{query}/cancel"), None)?.status == 200)
    }

    /// `GET /tenants/{name}` as parsed JSON (None when never seen).
    pub fn tenant_status(&mut self, tenant: &str) -> io::Result<Option<Json>> {
        let resp = self.request("GET", &format!("/tenants/{tenant}"), None)?;
        if resp.status != 200 {
            return Ok(None);
        }
        resp.json().map(Some).map_err(invalid)
    }

    /// `GET /stats` as parsed JSON.
    pub fn stats(&mut self) -> io::Result<Json> {
        let resp = self.request("GET", "/stats", None)?;
        resp.json().map_err(invalid)
    }

    /// `GET /metrics` Prometheus text.
    pub fn metrics(&mut self) -> io::Result<String> {
        Ok(self.request("GET", "/metrics", None)?.body)
    }

    /// `GET /catalog` as parsed JSON.
    pub fn catalog(&mut self) -> io::Result<Json> {
        let resp = self.request("GET", "/catalog", None)?;
        resp.json().map_err(invalid)
    }

    /// Open the query's NDJSON stream and hand each raw line (newline
    /// included) to `on_line` until the stream ends or the callback
    /// returns false — returning false drops the connection mid-stream,
    /// which the server treats as a client disconnect (cancelling the
    /// query if it is still running).
    ///
    /// Returns the raw lines delivered, in order.
    pub fn stream(
        &self,
        query: u64,
        mut on_line: impl FnMut(&str) -> bool,
    ) -> io::Result<Vec<String>> {
        let mut conn = TcpStream::connect(self.addr)?;
        conn.set_nodelay(true)?;
        write!(
            conn,
            "GET /queries/{query}/stream HTTP/1.1\r\nHost: {}\r\nContent-Length: 0\r\n\r\n",
            self.addr,
        )?;
        conn.flush()?;
        let mut reader = BufReader::new(conn);
        let (status, headers) = read_head(&mut reader)?;
        if status != 200 {
            let body = read_body(&mut reader, &headers)?;
            return Err(invalid(format!("stream rejected ({status}): {body}")));
        }
        let mut lines = Vec::new();
        let mut partial = String::new();
        while let Some(chunk) = read_chunk(&mut reader)? {
            partial.push_str(&chunk);
            while let Some(pos) = partial.find('\n') {
                let line: String = partial.drain(..=pos).collect();
                let keep = on_line(&line);
                lines.push(line);
                if !keep {
                    return Ok(lines);
                }
            }
        }
        Ok(lines)
    }

    /// Stream a query to completion and decode every line.
    pub fn stream_events(&self, query: u64) -> io::Result<Vec<StreamEvent>> {
        let lines = self.stream(query, |_| true)?;
        lines.iter().map(|l| StreamEvent::decode(l).map_err(invalid)).collect()
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// Read a response's status line + headers.
fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid(format!("bad status line: {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(invalid("eof in headers".to_string()));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((n, v)) = h.split_once(':') {
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    Ok((status, headers))
}

/// Read a fixed-length (or empty) response body.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    headers: &[(String, String)],
) -> io::Result<String> {
    let len = header(headers, "content-length").and_then(|v| v.parse::<usize>().ok()).unwrap_or(0);
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| invalid(e.to_string()))
}

/// Decode one transfer-encoding chunk; `None` on the terminal chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> io::Result<Option<String>> {
    let mut size_line = String::new();
    if reader.read_line(&mut size_line)? == 0 {
        // Stream truncated without a terminal chunk: a cancelled query's
        // stream ends this way.
        return Ok(None);
    }
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| invalid(format!("bad chunk size: {size_line:?}")))?;
    if size == 0 {
        let mut crlf = String::new();
        let _ = reader.read_line(&mut crlf);
        return Ok(None);
    }
    let mut buf = vec![0u8; size + 2];
    reader.read_exact(&mut buf)?;
    buf.truncate(size);
    String::from_utf8(buf).map(Some).map_err(|e| invalid(e.to_string()))
}
