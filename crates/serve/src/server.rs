//! The listener: accept loop, per-connection handler threads, routing.
//!
//! Thread model: a blocking accept loop hands each connection to a small
//! handler thread (keep-alive loop); query *execution* never happens on
//! connection threads — it runs on the fixed worker pool inside
//! [`ServerState`], so a slow client cannot stall the crowd.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::http::{read_request, respond, ChunkedWriter, Request};
use crate::state::{ServeConfig, ServerState};
use crate::wire::{decision_status, encode_decision, encode_error, Submit};

/// A running server: its address, shared state, and thread handles.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Start a server on `addr` (use port 0 for an ephemeral port) over the
/// given catalog and simulated ground truth.
pub fn start(
    addr: &str,
    db: cdb_storage::Database,
    truth: cdb_core::QueryTruth,
    cfg: ServeConfig,
) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let state = ServerState::new(db, truth, cfg);
    let workers = (0..state.config().exec_threads.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("serve-exec-{i}"))
                .spawn(move || state.worker_loop())
                .expect("spawn exec worker")
        })
        .collect();
    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || accept_loop(listener, accept_state))
        .expect("spawn accept loop");
    Ok(Server { addr, state, accept: Some(accept), workers })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests and in-process drivers reach through it).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stop accepting, drain workers, and join the long-lived threads.
    /// Open streaming connections notice within their poll interval.
    pub fn shutdown(mut self) {
        self.state.stop();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(c) => c,
            Err(_) => continue,
        };
        if state.stopping() {
            return;
        }
        // Responses and stream chunks are many small writes; without
        // nodelay, Nagle + delayed ACK stalls every keep-alive roundtrip
        // by tens of milliseconds.
        let _ = stream.set_nodelay(true);
        let state = Arc::clone(&state);
        // Connection handlers only parse, route, and pump retained
        // chunks; a small stack keeps a thousand idle streams cheap.
        let _ = std::thread::Builder::new().name("serve-conn".into()).stack_size(256 * 1024).spawn(
            move || {
                let _ = handle_connection(stream, state);
            },
        );
    }
}

/// Keep-alive loop over one connection.
fn handle_connection(stream: TcpStream, state: Arc<ServerState>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()),
            Err(e) => {
                let body = encode_error(&e.to_string());
                let _ = respond(&mut writer, 400, "application/json", body.as_bytes(), false);
                return Ok(());
            }
        };
        let keep_alive = req.keep_alive();
        match route(&req, &mut writer, &state)? {
            Flow::KeepAlive if keep_alive && !state.stopping() => continue,
            _ => return Ok(()),
        }
    }
}

/// Whether the connection can serve another request after this response.
enum Flow {
    KeepAlive,
    Close,
}

fn route(req: &Request, w: &mut TcpStream, state: &Arc<ServerState>) -> io::Result<Flow> {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => {
            respond(w, 200, "text/plain", b"ok\n", true)?;
            Ok(Flow::KeepAlive)
        }
        ("GET", ["metrics"]) => {
            respond(w, 200, "text/plain; version=0.0.4", state.prometheus().as_bytes(), true)?;
            Ok(Flow::KeepAlive)
        }
        ("GET", ["catalog"]) => {
            respond(w, 200, "application/json", state.catalog().as_bytes(), true)?;
            Ok(Flow::KeepAlive)
        }
        ("GET", ["stats"]) => {
            respond(w, 200, "application/json", state.stats().as_bytes(), true)?;
            Ok(Flow::KeepAlive)
        }
        ("POST", ["queries"]) => {
            let submit = match Submit::decode(req.body_str()) {
                Ok(s) => s,
                Err(e) => return bad_request(w, &e),
            };
            match state.submit(&submit) {
                Ok((decision, id)) => {
                    let body = encode_decision(&decision, id);
                    respond(
                        w,
                        decision_status(&decision),
                        "application/json",
                        body.as_bytes(),
                        true,
                    )?;
                    Ok(Flow::KeepAlive)
                }
                Err(e) => bad_request(w, &e),
            }
        }
        ("GET", ["queries", id]) => {
            match id.parse::<u64>().ok().and_then(|q| state.query_status(q)) {
                Some(body) => {
                    respond(w, 200, "application/json", body.as_bytes(), true)?;
                    Ok(Flow::KeepAlive)
                }
                None => not_found(w),
            }
        }
        ("POST", ["queries", id, "cancel"]) => match id.parse::<u64>().map(|q| state.cancel(q)) {
            Ok(true) => {
                respond(w, 200, "application/json", b"{\"cancelled\":true}", true)?;
                Ok(Flow::KeepAlive)
            }
            _ => not_found(w),
        },
        ("GET", ["queries", id, "stream"]) => {
            let Ok(q) = id.parse::<u64>() else { return not_found(w) };
            if state.query_status(q).is_none() {
                return not_found(w);
            }
            stream_query(w, state, q)?;
            Ok(Flow::Close)
        }
        ("GET", ["tenants", name]) => match state.tenant_status(name) {
            Some(body) => {
                respond(w, 200, "application/json", body.as_bytes(), true)?;
                Ok(Flow::KeepAlive)
            }
            None => not_found(w),
        },
        (_, _) => {
            let body = encode_error("no such route");
            respond(w, 404, "application/json", body.as_bytes(), true)?;
            Ok(Flow::KeepAlive)
        }
    }
}

fn bad_request(w: &mut TcpStream, msg: &str) -> io::Result<Flow> {
    let body = encode_error(msg);
    respond(w, 400, "application/json", body.as_bytes(), true)?;
    Ok(Flow::KeepAlive)
}

fn not_found(w: &mut TcpStream) -> io::Result<Flow> {
    let body = encode_error("not found");
    respond(w, 404, "application/json", body.as_bytes(), true)?;
    Ok(Flow::KeepAlive)
}

/// Pump a query's NDJSON stream: retained chunks first (late subscribers
/// replay the full history), then live chunks as rounds resolve. A write
/// failure means the client went away mid-stream — that cancels the
/// query, which refunds its unspent budget.
fn stream_query(w: &mut TcpStream, state: &Arc<ServerState>, query: u64) -> io::Result<()> {
    let mut sent = 0usize;
    let mut out = ChunkedWriter::start(w, "application/x-ndjson")?;
    while let Some((chunks, done)) = state.wait_chunks(query, sent) {
        for c in &chunks {
            if let Err(e) = out.chunk(c) {
                // Mid-stream disconnect: only cancel if the query is
                // still running — a replay of a finished stream must not
                // touch the ledger.
                if !done {
                    state.cancel(query);
                }
                return Err(e);
            }
        }
        sent += chunks.len();
        if done {
            return out.finish();
        }
        if state.stopping() {
            break;
        }
    }
    out.finish()
}
