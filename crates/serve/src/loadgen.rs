//! The load generator: drives a running server with concurrent client
//! queries over real sockets, watches their NDJSON streams, and checks
//! the streamed bindings against the in-process oracle
//! ([`cdb_runtime::execute_query`] with the same seed — the server must
//! lose nothing and duplicate nothing on the way to the wire).

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use cdb_core::{build_query_graph, QueryTruth};
use cdb_runtime::{execute_query, QueryJob, RuntimeMetrics};

use crate::client::{Client, SubmitOutcome};
use crate::state::ServeConfig;
use crate::wire::{StreamEvent, Submit};

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Distinct tenants (named `t00`, `t01`, ...), submitted round-robin.
    pub tenants: usize,
    /// Queries per tenant.
    pub queries_per_tenant: usize,
    /// The CQL text every query submits (per-query randomness still
    /// differs — execution is keyed by query id).
    pub sql: String,
    /// Per-query budget, in cents.
    pub budget_cents: u64,
    /// Client connections submitting concurrently.
    pub submitters: usize,
    /// Client connections watching streams concurrently.
    pub stream_workers: usize,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            tenants: 4,
            queries_per_tenant: 8,
            sql: String::new(),
            budget_cents: 10_000,
            submitters: 4,
            stream_workers: 8,
        }
    }
}

/// What one load run observed, client-side.
#[derive(Debug)]
pub struct LoadReport {
    /// Queries submitted (admitted + queued + rejected).
    pub submitted: u64,
    /// Admitted immediately.
    pub admitted: u64,
    /// Queued behind the tenant envelope.
    pub queued: u64,
    /// Rejected (should be 0 for a well-sized plan).
    pub rejected: u64,
    /// Streams that ended in a `done` event without cancellation.
    pub completed: u64,
    /// Streams that ended in an `error` event.
    pub failed: u64,
    /// Streams that ended cancelled.
    pub cancelled: u64,
    /// Peak concurrently in-flight queries, per the server's own gauge.
    pub peak_inflight: u64,
    /// Wall-clock seconds from first submit to last stream completion.
    pub wall_secs: f64,
    /// Completed queries per wall-clock second.
    pub qps: f64,
    /// Client-side submit→first-`round`-chunk latencies, ms, one per
    /// query that streamed at least one binding.
    pub first_binding_ms: Vec<f64>,
    /// Every query's decoded stream, by id — input to
    /// [`verify_streams`].
    pub streams: BTreeMap<u64, Vec<StreamEvent>>,
}

impl LoadReport {
    /// The p-th percentile (0..=1) of the client-side first-binding
    /// latencies; 0 when nothing streamed.
    pub fn first_binding_percentile(&self, p: f64) -> f64 {
        percentile(&self.first_binding_ms, p)
    }
}

/// The p-th percentile (0..=1) of unsorted samples; 0 when empty.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let idx = ((s.len() as f64 - 1.0) * p).round() as usize;
    s[idx.min(s.len() - 1)]
}

/// Drive `plan` against the server at `addr` and watch every stream to
/// its end. Blocks until all submitted queries are terminal.
pub fn run_load(addr: SocketAddr, plan: &LoadPlan) -> std::io::Result<LoadReport> {
    let total = plan.tenants * plan.queries_per_tenant;
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<(u64, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let admitted = Arc::new(AtomicU64::new(0));
    let queued = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));

    // Submitters: round-robin tenants so every envelope fills evenly.
    let work: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new((0..total).rev().collect()));
    let submit_threads: Vec<_> = (0..plan.submitters.max(1))
        .map(|_| {
            let work = Arc::clone(&work);
            let tx = tx.clone();
            let (admitted, queued, rejected) =
                (Arc::clone(&admitted), Arc::clone(&queued), Arc::clone(&rejected));
            let plan = plan.clone();
            std::thread::spawn(move || -> std::io::Result<()> {
                let mut client = Client::new(addr);
                loop {
                    let Some(i) = work.lock().unwrap().pop() else { return Ok(()) };
                    let submit = Submit {
                        tenant: format!("t{:02}", i % plan.tenants),
                        sql: plan.sql.clone(),
                        budget_cents: plan.budget_cents,
                        deadline_rounds: None,
                    };
                    match client.submit(&submit)? {
                        SubmitOutcome::Admitted { query } => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                            let _ = tx.send((query, Instant::now()));
                        }
                        SubmitOutcome::Queued { query, .. } => {
                            queued.fetch_add(1, Ordering::Relaxed);
                            let _ = tx.send((query, Instant::now()));
                        }
                        SubmitOutcome::Rejected { .. } => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    drop(tx);

    // Stream watchers: read every accepted query's stream to the end.
    type Watched = BTreeMap<u64, (Vec<StreamEvent>, Option<f64>)>;
    let watched: Arc<Mutex<Watched>> = Arc::new(Mutex::new(BTreeMap::new()));
    let watch_threads: Vec<_> = (0..plan.stream_workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let watched = Arc::clone(&watched);
            std::thread::spawn(move || -> std::io::Result<()> {
                let client = Client::new(addr);
                loop {
                    let next = rx.lock().unwrap().recv();
                    let Ok((query, submitted_at)) = next else { return Ok(()) };
                    let mut first: Option<f64> = None;
                    let lines = client.stream(query, |line| {
                        if first.is_none() && line.contains("\"event\":\"round\"") {
                            first = Some(submitted_at.elapsed().as_secs_f64() * 1e3);
                        }
                        true
                    })?;
                    let events: Vec<StreamEvent> = lines
                        .iter()
                        .map(|l| {
                            StreamEvent::decode(l).map_err(|e| {
                                std::io::Error::new(std::io::ErrorKind::InvalidData, e)
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    watched.lock().unwrap().insert(query, (events, first));
                }
            })
        })
        .collect();

    for t in submit_threads {
        t.join().expect("submitter panicked")?;
    }
    for t in watch_threads {
        t.join().expect("stream watcher panicked")?;
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let mut client = Client::new(addr);
    let stats = client.stats()?;
    let peak_inflight =
        stats.get("peak_inflight").and_then(|v| v.as_num()).unwrap_or_default() as u64;

    let watched = Arc::try_unwrap(watched).expect("watchers joined").into_inner().unwrap();
    let mut report = LoadReport {
        submitted: total as u64,
        admitted: admitted.load(Ordering::Relaxed),
        queued: queued.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        completed: 0,
        failed: 0,
        cancelled: 0,
        peak_inflight,
        wall_secs,
        qps: 0.0,
        first_binding_ms: Vec::new(),
        streams: BTreeMap::new(),
    };
    for (query, (events, first)) in watched {
        match events.last() {
            Some(StreamEvent::Done { cancelled: false, .. }) => report.completed += 1,
            Some(StreamEvent::Done { cancelled: true, .. }) => report.cancelled += 1,
            Some(StreamEvent::Error { .. }) => report.failed += 1,
            _ => report.failed += 1,
        }
        if let Some(ms) = first {
            report.first_binding_ms.push(ms);
        }
        report.streams.insert(query, events);
    }
    report.qps = report.completed as f64 / wall_secs.max(1e-9);
    Ok(report)
}

/// The zero-loss check's verdict.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleCheck {
    /// Streams compared.
    pub queries: u64,
    /// Oracle answer bindings across all compared queries.
    pub bindings_total: u64,
    /// Oracle bindings the stream never delivered (must be 0).
    pub lost: u64,
    /// Bindings delivered more than once in one stream (must be 0).
    pub duplicated: u64,
    /// Streamed-then-withdrawn bindings (nonzero only for recoloring
    /// quality strategies).
    pub retracted: u64,
    /// Bindings the stream claims that the oracle does not (must be 0).
    pub spurious: u64,
}

impl OracleCheck {
    /// True when the wire lost nothing, duplicated nothing, and invented
    /// nothing.
    pub fn clean(&self) -> bool {
        self.lost == 0 && self.duplicated == 0 && self.spurious == 0
    }
}

/// Re-execute every watched query in-process with the server's exact
/// configuration and compare bindings: the streamed union (minus
/// retractions) must equal the oracle's answer set, with no binding
/// streamed twice.
pub fn verify_streams(
    db: &cdb_storage::Database,
    truth: &QueryTruth,
    cfg: &ServeConfig,
    sql: &str,
    streams: &BTreeMap<u64, Vec<StreamEvent>>,
) -> OracleCheck {
    let cdb_cql::Statement::Select(q) = cdb_cql::parse(sql).expect("load SQL parses") else {
        panic!("load SQL must be a SELECT");
    };
    let analyzed = cdb_cql::analyze_select(&q, db).expect("load SQL analyzes");
    let graph = build_query_graph(&analyzed, db, &cfg.build);
    let edge_truth = truth.edge_truth(&graph);
    let metrics = Arc::new(RuntimeMetrics::new());
    let mut oracle_cfg = cfg.runtime.clone();
    oracle_cfg.exec.budget = analyzed.budget.or(oracle_cfg.exec.budget);
    oracle_cfg.round_sink = None;

    let mut check = OracleCheck::default();
    for (&id, events) in streams {
        let job = QueryJob { id, graph: graph.clone(), truth: edge_truth.clone() };
        let (_, result) = execute_query(&oracle_cfg, &metrics, job, None);
        let oracle: std::collections::BTreeSet<Vec<u64>> = result
            .expect("oracle run succeeds")
            .bindings
            .iter()
            .map(|b| b.iter().map(|n| n.0 as u64).collect())
            .collect();
        let mut streamed: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
        let mut retracted: Vec<Vec<u64>> = Vec::new();
        for e in events {
            match e {
                StreamEvent::Round { new, .. } => {
                    for b in new {
                        *streamed.entry(b.clone()).or_default() += 1;
                    }
                }
                StreamEvent::Retract { bindings } => retracted.extend(bindings.iter().cloned()),
                _ => {}
            }
        }
        check.queries += 1;
        check.bindings_total += oracle.len() as u64;
        check.retracted += retracted.len() as u64;
        check.duplicated += streamed.values().filter(|&&c| c > 1).count() as u64;
        let mut net: std::collections::BTreeSet<Vec<u64>> = streamed.into_keys().collect();
        for b in &retracted {
            net.remove(b);
        }
        check.lost += oracle.difference(&net).count() as u64;
        check.spurious += net.difference(&oracle).count() as u64;
    }
    check
}
