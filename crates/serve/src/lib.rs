//! `cdb-serve` — the wire surface: a multi-tenant CQL service over
//! HTTP/1.1, std-only, in front of the crowd runtime.
//!
//! Sessions `POST /queries` with CQL text and a tenant name, get a typed
//! admission decision (`admitted` / `queued` / `rejected`) from the
//! tenant's [`cdb_sched`] money/concurrency envelope, then stream result
//! bindings from `GET /queries/{id}/stream` as NDJSON chunks *while the
//! crowd is still answering* — the runtime's per-round hook pushes each
//! round's newly-resolved bindings straight onto the wire. `/metrics`
//! re-exposes the runtime's Prometheus families plus the serve layer's
//! own.
//!
//! Three guarantees the tests pin down:
//!
//! 1. **Replay determinism on the wire** — for a fixed server seed and
//!    submission order, every query's NDJSON stream is byte-identical
//!    regardless of the execution worker-pool size (1/4/8), because
//!    execution randomness is keyed by `(seed, query id)` and chunks
//!    carry no wall-clock state.
//! 2. **Zero lost or duplicated bindings** — the streamed union (minus
//!    retractions) equals the in-process oracle's answer set, per query,
//!    under thousands of concurrent clients ([`loadgen`]).
//! 3. **Money conservation** — admission holds the pessimistic cost
//!    envelope; completion refunds exactly the unspent part, failures
//!    refund everything, and a client disconnect mid-stream cancels the
//!    query and refunds what the crowd never consumed.
//!
//! See `docs/OPERATIONS.md` for running the server and `docs/CQL.md` for
//! the query language it accepts.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod state;
pub mod wire;

pub use client::{Client, HttpResponse, SubmitOutcome};
pub use loadgen::{percentile, run_load, verify_streams, LoadPlan, LoadReport, OracleCheck};
pub use server::{start, Server};
pub use state::{QueryState, ServeConfig, ServerState};
pub use wire::{StreamEvent, Submit};
