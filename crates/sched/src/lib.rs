//! Multi-query scheduling for CDB: admission control, fair-share rounds
//! and cross-query HIT batching.
//!
//! The paper optimizes one query at a time; under the "heavy traffic"
//! north star many queries hit the crowd *together*, and per-query
//! dispatch wastes both money (every query pays for its own partial HITs)
//! and fairness (a large join can monopolize the worker pool the way a
//! table scan monopolizes a disk). This crate sits between the `Cdb`
//! facade and the runtime engine and adds the multi-query layer:
//!
//! * [`admission`] — typed admission against a global money/worker
//!   envelope: [`AdmissionDecision::Admitted`] /
//!   [`AdmissionDecision::Queued`] (bounded — backpressure, not unbounded
//!   queueing) / [`AdmissionDecision::Rejected`], holding each query's
//!   pre-execution [`cdb_core::CostEstimate`] against the envelope.
//! * [`drr`] — deficit-round-robin interleaving of per-query round traces
//!   into global crowd rounds, preserving each query's solo latency bound.
//! * [`scheduler`] — the driver: execute admitted waves on the unmodified
//!   deterministic [`cdb_runtime::RuntimeExecutor`], interleave, and bill
//!   global rounds as shared HITs ([`cdb_crowd::pack_shared`]) with
//!   cents-exact per-query attribution.
//! * [`metrics`] — `sched.*` counters as a [`cdb_obsv::Collector`], with
//!   the conservation check (attributed cents == platform cents).
//!
//! Batching never changes answers: execution is per-query deterministic
//! and the scheduler only re-packs the billing — see the determinism notes
//! on [`scheduler`].

#![deny(missing_docs)]

pub mod admission;
pub mod drr;
pub mod metrics;
pub mod scheduler;

pub use admission::{AdmissionController, AdmissionDecision, Envelope, QueryRequest, RejectReason};
pub use drr::{DrrConfig, GlobalRound};
pub use metrics::{SchedMetrics, SchedSnapshot};
pub use scheduler::{RoundRecord, SchedConfig, SchedJob, SchedReport, Scheduler};
