//! Deficit-round-robin fair sharing: interleave per-query task batches
//! into global crowd rounds so one large join cannot starve small
//! selections.
//!
//! The runtime executes each admitted query deterministically and records
//! its *round trace* — how many tasks it published to the crowd in each of
//! its own rounds ([`cdb_runtime::QueryResult::round_tasks`]). The DRR
//! scheduler then replays those traces into a shared global schedule:
//!
//! * every global round, each still-active query (visited in query-id
//!   order) earns `quantum` deficit and releases up to that many tasks
//!   from its *current* executor round;
//! * an executor round must fully drain before the query's next one
//!   becomes eligible, and the next one starts no earlier than the
//!   following global round — answers from round *r* inform round *r+1*,
//!   so their order is a data dependency, not a policy choice;
//! * an optional global `capacity` bounds the tasks a single global round
//!   may carry (worker supply); a query cut off by the cap keeps its
//!   accrued deficit and catches up in later rounds — the classic DRR
//!   carry-over.
//!
//! Fairness bound: with capacity at least `active × quantum`, a query
//! whose executor rounds each publish `t_r` tasks finishes in exactly
//! `Σ_r ceil(t_r / quantum)` global rounds — independent of how many or
//! how large its neighbors are. A small selection keeps its solo latency
//! (one global round per executor round when `t_r ≤ quantum`) while a
//! 500-task join round spreads over `ceil(500/quantum)` rounds instead of
//! monopolizing the crowd.

/// Fair-share knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrrConfig {
    /// Tasks of deficit each active query earns per global round.
    pub quantum: usize,
    /// Optional cap on total tasks per global round (worker supply). With
    /// `None`, every query always receives its full quantum.
    pub capacity: Option<usize>,
}

impl Default for DrrConfig {
    fn default() -> Self {
        DrrConfig { quantum: 10, capacity: None }
    }
}

/// One global crowd round of the interleaved schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalRound {
    /// Index in the global schedule.
    pub index: usize,
    /// `(query id, tasks released)` in query-id order; only queries that
    /// released at least one task appear.
    pub contributions: Vec<(u64, usize)>,
}

impl GlobalRound {
    /// Total tasks this round carries.
    pub fn task_count(&self) -> usize {
        self.contributions.iter().map(|&(_, n)| n).sum()
    }
}

struct QueryState {
    id: u64,
    rounds: Vec<usize>,
    /// Index of the current executor round.
    round: usize,
    /// Tasks still to release from the current executor round.
    remaining: usize,
    /// Accrued deficit (carries over only when the capacity cap cut the
    /// query off mid-round).
    deficit: usize,
    /// Global round in which the previous executor round drained — the
    /// next round may not release before `barrier + 1`.
    barrier: Option<usize>,
}

impl QueryState {
    fn done(&self) -> bool {
        self.round >= self.rounds.len()
    }

    fn advance_past_empty(&mut self) {
        while self.round < self.rounds.len() && self.remaining == 0 {
            self.round += 1;
            if self.round < self.rounds.len() {
                self.remaining = self.rounds[self.round];
            }
        }
    }
}

/// Interleave per-query round traces into a global schedule.
///
/// `traces` is `(query id, tasks per executor round)`; ids must be unique.
/// Traces are scheduled in query-id order each round. Returns the global
/// rounds plus, for bookkeeping, the global round index (0-based) in which
/// each query released its last task, as `(query id, finish round)` in
/// query-id order (queries with empty traces finish in round 0 having
/// released nothing — they do not appear).
pub fn schedule(
    traces: &[(u64, Vec<usize>)],
    cfg: DrrConfig,
) -> (Vec<GlobalRound>, Vec<(u64, usize)>) {
    assert!(cfg.quantum > 0, "quantum must be positive");
    assert!(cfg.capacity != Some(0), "a zero-capacity round can never drain");
    let mut states: Vec<QueryState> = traces
        .iter()
        .filter(|(_, rounds)| rounds.iter().any(|&t| t > 0))
        .map(|(id, rounds)| {
            let mut s = QueryState {
                id: *id,
                rounds: rounds.clone(),
                round: 0,
                remaining: rounds.first().copied().unwrap_or(0),
                deficit: 0,
                barrier: None,
            };
            s.advance_past_empty();
            s
        })
        .collect();
    states.sort_by_key(|s| s.id);
    assert!(states.windows(2).all(|w| w[0].id != w[1].id), "duplicate query id in DRR traces");

    let mut rounds = Vec::new();
    let mut finish: Vec<(u64, usize)> = Vec::new();
    while states.iter().any(|s| !s.done()) {
        let g = rounds.len();
        let mut room = cfg.capacity.unwrap_or(usize::MAX);
        let mut contributions = Vec::new();
        for s in states.iter_mut().filter(|s| !s.done()) {
            // Data dependency: an executor round that drained in global
            // round `b` hands its answers to the optimizer before the next
            // round's tasks exist — those go out in `b + 1` at the earliest.
            if s.barrier == Some(g) {
                continue;
            }
            s.deficit += cfg.quantum;
            let take = s.deficit.min(s.remaining).min(room);
            if take > 0 {
                contributions.push((s.id, take));
                s.remaining -= take;
                s.deficit -= take;
                room -= take;
            }
            if s.remaining == 0 {
                // Round drained: reset the deficit (DRR resets when the
                // queue empties — accrual is for backlog, not banking).
                s.deficit = 0;
                s.round += 1;
                if s.round < s.rounds.len() {
                    s.remaining = s.rounds[s.round];
                    s.advance_past_empty();
                }
                if s.done() {
                    finish.push((s.id, g));
                } else {
                    s.barrier = Some(g);
                }
            }
        }
        debug_assert!(!contributions.is_empty(), "live queries must make progress");
        rounds.push(GlobalRound { index: g, contributions });
    }
    finish.sort_by_key(|&(id, _)| id);
    (rounds, finish)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(quantum: usize) -> DrrConfig {
        DrrConfig { quantum, capacity: None }
    }

    #[test]
    fn small_queries_keep_their_solo_latency_beside_a_giant() {
        // One join publishing 100 tasks per round for 3 rounds, four
        // selections publishing 4 tasks per round for 2 rounds.
        let mut traces = vec![(0u64, vec![100, 100, 100])];
        for q in 1..=4u64 {
            traces.push((q, vec![4, 4]));
        }
        let (rounds, finish) = schedule(&traces, cfg(10));
        // Each selection drains one executor round per global round: solo
        // latency (2 rounds) preserved exactly.
        for q in 1..=4 {
            assert_eq!(finish.iter().find(|&&(id, _)| id == q).unwrap().1, 1);
        }
        // The giant spreads each 100-task round over ceil(100/10) = 10
        // global rounds: 3 × 10 = 30 rounds, finishing in round 29.
        assert_eq!(finish.iter().find(|&&(id, _)| id == 0).unwrap().1, 29);
        assert_eq!(rounds.len(), 30);
        // Total tasks are conserved.
        let total: usize = rounds.iter().map(GlobalRound::task_count).sum();
        assert_eq!(total, 300 + 4 * 8);
    }

    #[test]
    fn executor_rounds_respect_the_data_dependency() {
        // 3 tasks per round at quantum 10: each executor round drains in
        // one global round, but the next cannot start in the same one.
        let (rounds, finish) = schedule(&[(7, vec![3, 3, 3])], cfg(10));
        assert_eq!(rounds.len(), 3);
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.contributions, vec![(7, 3)], "round {i}");
        }
        assert_eq!(finish, vec![(7, 2)]);
    }

    #[test]
    fn capacity_cut_queries_carry_deficit_forward() {
        // Two queries, one 8-task round each, capacity 10, quantum 8:
        // q1 takes 8, q2 only gets the remaining 2 — but keeps its 6
        // unspent deficit and needs no new full quantum next round.
        let (rounds, _) =
            schedule(&[(1, vec![8]), (2, vec![8])], DrrConfig { quantum: 8, capacity: Some(10) });
        assert_eq!(rounds[0].contributions, vec![(1, 8), (2, 2)]);
        // Round 1: q2 has deficit 6 + quantum 8 = 14 ≥ remaining 6.
        assert_eq!(rounds[1].contributions, vec![(2, 6)]);
        assert_eq!(rounds.len(), 2);
    }

    #[test]
    fn empty_and_zero_traces_schedule_to_nothing() {
        let (rounds, finish) = schedule(&[], cfg(10));
        assert!(rounds.is_empty());
        assert!(finish.is_empty());
        let (rounds, finish) = schedule(&[(1, vec![]), (2, vec![0, 0])], cfg(10));
        assert!(rounds.is_empty());
        assert!(finish.is_empty());
    }

    #[test]
    fn zero_task_interior_rounds_are_skipped() {
        // Reuse can blank an interior round (all hits publish nothing);
        // the trace recorded by the engine omits them, but be robust to
        // explicit zeros too.
        let (rounds, finish) = schedule(&[(3, vec![2, 0, 2])], cfg(10));
        assert_eq!(rounds.len(), 2);
        assert_eq!(finish, vec![(3, 1)]);
    }

    #[test]
    fn schedule_is_deterministic_and_id_ordered() {
        let traces = vec![(9u64, vec![5, 5]), (2, vec![7]), (5, vec![1, 1, 1])];
        let (a, fa) = schedule(&traces, cfg(4));
        let mut shuffled = traces.clone();
        shuffled.rotate_left(1);
        let (b, fb) = schedule(&shuffled, cfg(4));
        assert_eq!(a, b, "input order must not matter");
        assert_eq!(fa, fb);
        for r in &a {
            let ids: Vec<u64> = r.contributions.iter().map(|&(q, _)| q).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "contributions in query-id order");
        }
    }

    #[test]
    fn fairness_bound_holds_for_every_query() {
        // completion(q) == Σ_r ceil(t_r/quantum) global rounds when the
        // capacity never binds — the per-query latency bound.
        let traces: Vec<(u64, Vec<usize>)> = vec![
            (0, vec![33, 7, 12]),
            (1, vec![1]),
            (2, vec![10, 10, 10, 10]),
            (3, vec![2, 2, 2, 2, 2]),
        ];
        let q = 10;
        let (_, finish) = schedule(&traces, cfg(q));
        for (id, tr) in &traces {
            let expect: usize = tr.iter().map(|t| t.div_ceil(q)).sum();
            let got = finish.iter().find(|&&(f, _)| f == *id).unwrap().1;
            assert_eq!(got + 1, expect, "query {id}");
        }
    }
}
