//! The multi-query scheduler: admission → deterministic execution →
//! fair-share interleaving → shared-HIT billing.
//!
//! # Determinism strategy
//!
//! Cross-query batching must not perturb query answers: the acceptance
//! bar is byte-identical per-query bindings with batching on or off, at
//! any thread count. The scheduler gets this by construction, in two
//! phases:
//!
//! 1. **Execution.** Admitted queries run through the unmodified
//!    [`RuntimeExecutor`] — each query a pure function of
//!    `(seed, query id)` ([`cdb_runtime::execute_query`]), byte-identical
//!    at 1/4/8 threads. The engine additionally records each query's
//!    *round trace* (tasks published per crowd round).
//! 2. **Interleaving.** The deficit-round-robin scheduler ([`crate::drr`])
//!    replays those traces into global crowd rounds, and the HIT packer
//!    bills each global round — either per query (batching off) or as
//!    shared HITs with largest-remainder cent attribution (batching on,
//!    [`cdb_crowd::attribute_shared_cents`]).
//!
//! Batching therefore changes *how tasks are packed and billed*, never
//! which tasks are asked or what the crowd answers. What it buys is the
//! partial-HIT waste: per query, every round ends with up to
//! `tasks_per_hit − 1` empty slots that are paid for anyway; packed
//! across queries those slots are filled. The `figures sched` sweep
//! quantifies the reduction (≥15% at 8 concurrent queries).
//!
//! Queued queries admit in *waves*: when a wave of active queries
//! completes, their committed budgets release and the controller promotes
//! the queue FIFO into the next wave. Wave composition is a pure function
//! of the request sequence, so the whole schedule replays.

use std::collections::BTreeMap;
use std::sync::Arc;

use cdb_core::cost::estimate::estimate;
use cdb_crowd::{attribute_shared_cents, pack_shared, HitConfig};
use cdb_obsv::attr::names;
use cdb_obsv::{kv, Event, SpanId, Trace};
use cdb_runtime::{QueryJob, QueryResult, RuntimeConfig, RuntimeError, RuntimeExecutor};

use crate::admission::{AdmissionController, AdmissionDecision, Envelope, QueryRequest};
use crate::drr::{schedule, DrrConfig, GlobalRound};
use crate::metrics::{SchedMetrics, SchedSnapshot};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// The runtime the admitted waves execute on (threads, seed, faults,
    /// reuse — all of it applies unchanged).
    pub runtime: RuntimeConfig,
    /// Global admission envelope.
    pub envelope: Envelope,
    /// Fair-share knobs (quantum, optional per-round capacity).
    pub drr: DrrConfig,
    /// HIT packing ("pack 10 tasks in each HIT", §6.3).
    pub hit: HitConfig,
    /// Pack tasks from different queries into shared HITs. Off bills each
    /// query its own `ceil(tasks / tasks_per_hit)` HITs per round.
    pub batching: bool,
    /// Observability sink for `sched.*` events (the scheduler's own
    /// [`SchedMetrics`] collector is always attached in addition).
    pub trace: Trace,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            runtime: RuntimeConfig::default(),
            envelope: Envelope::default(),
            drr: DrrConfig::default(),
            hit: HitConfig::default(),
            batching: true,
            trace: Trace::off(),
        }
    }
}

/// One query submitted to the scheduler: the job plus its resources.
#[derive(Debug, Clone)]
pub struct SchedJob {
    /// The query to run (its `id` keys decisions, results, attribution).
    pub job: QueryJob,
    /// Money this query brings, in cents.
    pub budget_cents: u64,
    /// Optional deadline in global scheduler rounds.
    pub deadline_rounds: Option<usize>,
}

impl SchedJob {
    /// A job with an effectively unlimited budget and no deadline.
    pub fn unconstrained(job: QueryJob) -> Self {
        SchedJob { job, budget_cents: u64::MAX, deadline_rounds: None }
    }
}

/// One global crowd round as billed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Global round index (continuous across waves).
    pub index: usize,
    /// `(query id, tasks)` in query-id order.
    pub contributions: Vec<(u64, usize)>,
    /// HITs published this round (under the configured batching mode).
    pub hits: usize,
    /// Platform spend this round, in cents.
    pub cents: u64,
}

/// Everything a scheduled run produced.
#[derive(Debug)]
pub struct SchedReport {
    /// Admission verdict per submitted query, in submission order.
    pub decisions: Vec<(u64, AdmissionDecision)>,
    /// Per-query outcomes of every admitted query, sorted by query id.
    pub results: Vec<(u64, Result<QueryResult, RuntimeError>)>,
    /// The billed global rounds, in order.
    pub rounds: Vec<RoundRecord>,
    /// Global round (0-based) in which each query released its last task.
    pub completion_round: BTreeMap<u64, usize>,
    /// Shared-HIT cost attributed per query, in cents. Sums exactly to
    /// [`platform_cents`](Self::platform_cents) — the conservation
    /// invariant.
    pub attributed_cents: BTreeMap<u64, u64>,
    /// Total platform spend on HITs, in cents.
    pub platform_cents: u64,
    /// Total HITs under the configured batching mode.
    pub total_hits: usize,
    /// Total HITs a per-query (unbatched) billing would have published —
    /// the baseline the HIT reduction is measured against.
    pub solo_hits: usize,
    /// Execution waves (1 unless admission queued queries).
    pub waves: usize,
    /// Frozen scheduler counters.
    pub metrics: SchedSnapshot,
}

impl SchedReport {
    /// Bindings-only rendering, byte-compatible with
    /// [`cdb_runtime::RuntimeReport::bindings_text`] — the artifact for
    /// comparing a scheduled run against a plain runtime run, or batching
    /// on against off.
    pub fn bindings_text(&self) -> String {
        let mut s = String::new();
        for (id, r) in &self.results {
            match r {
                Ok(q) => {
                    let bindings: Vec<String> = q
                        .bindings
                        .iter()
                        .map(|b| b.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join("."))
                        .collect();
                    s.push_str(&format!("q{id} answers=[{}]\n", bindings.join("|")));
                }
                Err(e) => s.push_str(&format!("q{id} error={e}\n")),
            }
        }
        s
    }

    /// Fraction of HITs saved versus per-query billing (0 when batching
    /// is off or nothing ran).
    pub fn hit_reduction(&self) -> f64 {
        if self.solo_hits == 0 {
            0.0
        } else {
            1.0 - self.total_hits as f64 / self.solo_hits as f64
        }
    }
}

/// Runs fleets of queries through admission, fair-share rounds and shared
/// HITs.
pub struct Scheduler {
    cfg: SchedConfig,
}

impl Scheduler {
    /// Build a scheduler from its configuration.
    pub fn new(cfg: SchedConfig) -> Self {
        Scheduler { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Admit, execute and bill every submitted query. Submission order is
    /// the arrival order admission sees; execution and billing are then
    /// deterministic (and thread-count independent) given that order.
    pub fn run(&self, submissions: Vec<SchedJob>) -> SchedReport {
        let metrics = Arc::new(SchedMetrics::new());
        let trace = self
            .cfg
            .trace
            .clone()
            .and(&Trace::collector(Arc::clone(&metrics) as Arc<dyn cdb_obsv::Collector>));
        let redundancy = self.cfg.runtime.exec.redundancy;
        let price_cents = self.cfg.runtime.market.task_price_cents();

        // Admission pass, in arrival order.
        let mut ctl = AdmissionController::new(self.cfg.envelope);
        let mut decisions = Vec::new();
        let mut queued_jobs: BTreeMap<u64, QueryJob> = BTreeMap::new();
        let mut wave: Vec<(QueryRequest, QueryJob)> = Vec::new();
        for sub in submissions {
            let est = estimate(&sub.job.graph, redundancy, price_cents);
            let req = QueryRequest {
                query: sub.job.id,
                estimate: est,
                budget_cents: sub.budget_cents,
                deadline_rounds: sub.deadline_rounds,
            };
            let decision = ctl.offer(req);
            match decision {
                AdmissionDecision::Admitted => {
                    trace.emit(Event::instant(
                        SpanId::ROOT,
                        names::SCHED_ADMIT,
                        0,
                        kv![q => req.query, cents => est.cost_cents_upper],
                    ));
                    wave.push((req, sub.job));
                }
                AdmissionDecision::Queued { position } => {
                    trace.emit(Event::instant(
                        SpanId::ROOT,
                        names::SCHED_QUEUE,
                        0,
                        kv![q => req.query, n => position as u64],
                    ));
                    queued_jobs.insert(req.query, sub.job);
                }
                AdmissionDecision::Rejected(reason) => {
                    trace.emit(Event::instant(
                        SpanId::ROOT,
                        names::SCHED_REJECT,
                        0,
                        kv![q => req.query, kind => reason.kind()],
                    ));
                }
            }
            decisions.push((req.query, decision));
        }

        // Execute in waves; bill each wave's interleaved schedule.
        let executor = RuntimeExecutor::new(self.cfg.runtime.clone());
        let mut results: Vec<(u64, Result<QueryResult, RuntimeError>)> = Vec::new();
        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut completion_round = BTreeMap::new();
        let mut attributed_cents: BTreeMap<u64, u64> = BTreeMap::new();
        let mut platform_cents = 0u64;
        let mut total_hits = 0usize;
        let mut solo_hits = 0usize;
        let mut waves = 0usize;
        while !wave.is_empty() {
            waves += 1;
            let (reqs, jobs): (Vec<_>, Vec<_>) = wave.drain(..).unzip();
            let report = executor.run(jobs);
            let traces: Vec<(u64, Vec<usize>)> = report
                .results
                .iter()
                .filter_map(|(id, r)| r.as_ref().ok().map(|q| (*id, q.round_tasks.clone())))
                .collect();
            let (globals, finish) = schedule(&traces, self.cfg.drr);
            let base = rounds.len();
            for g in &globals {
                let rec = self.bill_round(&trace, g, base + g.index, redundancy);
                for &(q, c) in &rec.attributed {
                    *attributed_cents.entry(q).or_default() += c;
                }
                platform_cents += rec.cents;
                total_hits += rec.hits;
                solo_hits += rec.solo_hits;
                rounds.push(RoundRecord {
                    index: base + g.index,
                    contributions: g.contributions.clone(),
                    hits: rec.hits,
                    cents: rec.cents,
                });
            }
            for (q, r) in finish {
                completion_round.insert(q, base + r);
            }
            results.extend(report.results);
            for req in &reqs {
                ctl.complete(&req.estimate);
            }
            wave = ctl
                .admit_wave()
                .into_iter()
                .map(|req| {
                    trace.emit(Event::instant(
                        SpanId::ROOT,
                        names::SCHED_ADMIT,
                        0,
                        kv![q => req.query, cents => req.estimate.cost_cents_upper],
                    ));
                    let job = queued_jobs.remove(&req.query).expect("queued job exists");
                    (req, job)
                })
                .collect();
        }
        results.sort_by_key(|&(id, _)| id);
        SchedReport {
            decisions,
            results,
            rounds,
            completion_round,
            attributed_cents,
            platform_cents,
            total_hits,
            solo_hits,
            waves,
            metrics: metrics.snapshot(),
        }
    }

    /// Bill one global round: HIT counts under both modes, platform spend
    /// and per-query attribution under the configured mode, plus the
    /// `sched.cost` / `sched.round` events.
    fn bill_round(
        &self,
        trace: &Trace,
        g: &GlobalRound,
        index: usize,
        redundancy: usize,
    ) -> BilledRound {
        let tph = self.cfg.hit.tasks_per_hit;
        let solo_hits: usize = g.contributions.iter().map(|&(_, n)| n.div_ceil(tph)).sum();
        let (hits, attributed) = if self.cfg.batching {
            let shared = pack_shared(&g.contributions, self.cfg.hit);
            (shared.len(), attribute_shared_cents(&shared, self.cfg.hit, redundancy))
        } else {
            (
                solo_hits,
                g.contributions
                    .iter()
                    .map(|&(q, n)| (q, self.cfg.hit.hits_cost_cents(n.div_ceil(tph), redundancy)))
                    .collect(),
            )
        };
        let cents = self.cfg.hit.hits_cost_cents(hits, redundancy);
        debug_assert_eq!(
            attributed.iter().map(|&(_, c)| c).sum::<u64>(),
            cents,
            "attribution must conserve platform cents"
        );
        let at = index as u64;
        for (q, task_n) in &g.contributions {
            let c = attributed.iter().find(|&&(aq, _)| aq == *q).map(|&(_, c)| c).unwrap_or(0);
            trace.emit(Event::instant(
                SpanId::ROOT,
                names::SCHED_COST,
                at,
                kv![q => *q, round => at, n => *task_n as u64, cents => c],
            ));
        }
        trace.emit(Event::instant(
            SpanId::ROOT,
            names::SCHED_ROUND,
            at,
            kv![
                round => at,
                n => g.task_count() as u64,
                hits => hits as u64,
                cents => cents
            ],
        ));
        BilledRound { hits, solo_hits, cents, attributed }
    }
}

struct BilledRound {
    hits: usize,
    solo_hits: usize,
    cents: u64,
    attributed: Vec<(u64, u64)>,
}
