//! Admission control: hold each arriving query's cost envelope against a
//! global money/worker-capacity envelope before it gets near the crowd.
//!
//! Queries arrive with their own budget (and optionally a round deadline);
//! the controller admits them into the active set, queues them for a later
//! wave, or rejects them with a typed reason. The queue is *bounded* —
//! when it fills, further arrivals are rejected immediately (backpressure)
//! instead of accumulating unboundedly.
//!
//! Money accounting is pessimistic: an *admitted* query commits its full
//! pre-execution envelope ([`cdb_core::CostEstimate`], a sound upper
//! bound) against the global budget, and releases it when it finishes.
//! Queued queries commit nothing until promoted, and promotion re-checks
//! the money — the scheduler never oversubscribes the envelope even if
//! every admitted query hits its worst case.

use std::collections::VecDeque;

use cdb_core::CostEstimate;

/// The global resource envelope concurrent queries are admitted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Total money available across all concurrently-admitted queries, in
    /// cents. Committed pessimistically at each query's envelope estimate.
    pub budget_cents: u64,
    /// Worker-capacity proxy: queries allowed to run concurrently in one
    /// wave. Arrivals beyond this are queued.
    pub max_active: usize,
    /// Bound on the wait queue. Arrivals past it are rejected
    /// ([`RejectReason::QueueFull`]) — backpressure, not unbounded growth.
    pub queue_capacity: usize,
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope { budget_cents: u64::MAX, max_active: 8, queue_capacity: 64 }
    }
}

/// One query's admission request: its cost envelope plus the resources it
/// arrives with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRequest {
    /// The query's id (results and attribution key off it).
    pub query: u64,
    /// Pre-execution cost envelope (see [`cdb_core::cost::estimate`]).
    ///
    /// [`cdb_core::cost::estimate`]: cdb_core::cost::estimate
    pub estimate: CostEstimate,
    /// The money this query is willing to spend, in cents.
    pub budget_cents: u64,
    /// Optional deadline, in global scheduler rounds.
    pub deadline_rounds: Option<usize>,
}

/// Why a query was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The query's envelope exceeds the *global* budget even with nothing
    /// else running — it could never be admitted.
    BudgetExceeded {
        /// The query's envelope cost, in cents.
        needed: u64,
        /// The global budget, in cents.
        available: u64,
    },
    /// The bounded wait queue is full (backpressure).
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The query can never meet its own constraints: its envelope exceeds
    /// its own budget, or its deadline allows fewer rounds than any run
    /// that asks a task needs.
    Infeasible,
}

impl RejectReason {
    /// Stable label for events and transcripts.
    pub fn kind(&self) -> &'static str {
        match self {
            RejectReason::BudgetExceeded { .. } => "budget-exceeded",
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::Infeasible => "infeasible",
        }
    }
}

/// The controller's verdict on one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// In the active set of the current wave.
    Admitted,
    /// Waiting; will be admitted in a later wave as capacity frees.
    Queued {
        /// Position in the wait queue at decision time (0 = next up).
        position: usize,
    },
    /// Turned away with a reason.
    Rejected(RejectReason),
}

/// Tracks the envelope across arrivals and completions.
#[derive(Debug)]
pub struct AdmissionController {
    envelope: Envelope,
    committed_cents: u64,
    active: usize,
    queue: VecDeque<QueryRequest>,
}

impl AdmissionController {
    /// A controller with nothing admitted.
    pub fn new(envelope: Envelope) -> Self {
        AdmissionController { envelope, committed_cents: 0, active: 0, queue: VecDeque::new() }
    }

    /// The envelope this controller enforces.
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// Cents currently committed by the active set.
    pub fn committed_cents(&self) -> u64 {
        self.committed_cents
    }

    /// Queries currently in the active set.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Queries currently waiting.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Decide one arrival. An admitted query commits its envelope cost;
    /// queued and rejected ones commit nothing (queued queries commit at
    /// promotion, in [`admit_wave`](Self::admit_wave)).
    pub fn offer(&mut self, req: QueryRequest) -> AdmissionDecision {
        let need = req.estimate.cost_cents_upper;
        // Per-query feasibility first: these can never succeed, no matter
        // how empty the system is.
        if need > req.budget_cents {
            return AdmissionDecision::Rejected(RejectReason::Infeasible);
        }
        if let Some(d) = req.deadline_rounds {
            let rounds_lower = usize::from(req.estimate.tasks_upper > 0);
            if d < rounds_lower {
                return AdmissionDecision::Rejected(RejectReason::Infeasible);
            }
        }
        if need > self.envelope.budget_cents {
            return AdmissionDecision::Rejected(RejectReason::BudgetExceeded {
                needed: need,
                available: self.envelope.budget_cents,
            });
        }
        // Global capacity: run now if a slot and the money are free,
        // otherwise wait — bounded.
        let money_free = self.envelope.budget_cents - self.committed_cents >= need;
        if self.active < self.envelope.max_active && money_free && self.queue.is_empty() {
            self.active += 1;
            self.committed_cents += need;
            return AdmissionDecision::Admitted;
        }
        if self.queue.len() >= self.envelope.queue_capacity {
            return AdmissionDecision::Rejected(RejectReason::QueueFull {
                capacity: self.envelope.queue_capacity,
            });
        }
        self.queue.push_back(req);
        AdmissionDecision::Queued { position: self.queue.len() - 1 }
    }

    /// Release one active query's committed envelope (it finished).
    pub fn complete(&mut self, estimate: &CostEstimate) {
        debug_assert!(self.active > 0, "complete without an active query");
        self.active = self.active.saturating_sub(1);
        self.committed_cents = self.committed_cents.saturating_sub(estimate.cost_cents_upper);
    }

    /// Promote queued queries into freed active slots, FIFO, committing
    /// each promoted query's envelope. Stops at the first queued query the
    /// remaining money cannot cover (head-of-line order is preserved — a
    /// cheap query never overtakes an expensive one that arrived first).
    /// Returns the promoted requests, in queue order.
    pub fn admit_wave(&mut self) -> Vec<QueryRequest> {
        let mut wave = Vec::new();
        while self.active < self.envelope.max_active {
            let Some(front) = self.queue.front() else { break };
            let need = front.estimate.cost_cents_upper;
            if self.envelope.budget_cents - self.committed_cents < need {
                break;
            }
            let req = self.queue.pop_front().expect("front exists");
            self.active += 1;
            self.committed_cents += need;
            wave.push(req);
        }
        wave
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(tasks: usize, cents: u64) -> CostEstimate {
        CostEstimate { tasks_upper: tasks, rounds_upper: tasks, cost_cents_upper: cents }
    }

    fn req(query: u64, cents: u64) -> QueryRequest {
        QueryRequest { query, estimate: est(4, cents), budget_cents: cents, deadline_rounds: None }
    }

    #[test]
    fn admits_until_capacity_then_queues_then_rejects() {
        let mut c = AdmissionController::new(Envelope {
            budget_cents: 1_000,
            max_active: 2,
            queue_capacity: 1,
        });
        assert_eq!(c.offer(req(1, 100)), AdmissionDecision::Admitted);
        assert_eq!(c.offer(req(2, 100)), AdmissionDecision::Admitted);
        assert_eq!(c.offer(req(3, 100)), AdmissionDecision::Queued { position: 0 });
        assert_eq!(
            c.offer(req(4, 100)),
            AdmissionDecision::Rejected(RejectReason::QueueFull { capacity: 1 })
        );
        assert_eq!(c.active(), 2);
        assert_eq!(c.queued(), 1);
        assert_eq!(c.committed_cents(), 200, "only the active set commits money");
    }

    #[test]
    fn money_envelope_queues_then_frees_on_completion() {
        let mut c = AdmissionController::new(Envelope {
            budget_cents: 150,
            max_active: 8,
            queue_capacity: 8,
        });
        assert_eq!(c.offer(req(1, 100)), AdmissionDecision::Admitted);
        // Fits capacity but not the remaining money: waits.
        assert_eq!(c.offer(req(2, 100)), AdmissionDecision::Queued { position: 0 });
        c.complete(&est(4, 100));
        let wave = c.admit_wave();
        assert_eq!(wave.len(), 1);
        assert_eq!(wave[0].query, 2);
        assert_eq!(c.committed_cents(), 100);
    }

    #[test]
    fn oversized_queries_are_rejected_not_queued() {
        let mut c = AdmissionController::new(Envelope {
            budget_cents: 50,
            max_active: 8,
            queue_capacity: 8,
        });
        assert_eq!(
            c.offer(req(1, 100)),
            AdmissionDecision::Rejected(RejectReason::BudgetExceeded {
                needed: 100,
                available: 50
            })
        );
        assert_eq!(c.committed_cents(), 0);
    }

    #[test]
    fn infeasible_requests_never_enter_the_system() {
        let mut c = AdmissionController::new(Envelope::default());
        // Envelope exceeds the query's own budget.
        let poor = QueryRequest {
            query: 1,
            estimate: est(4, 100),
            budget_cents: 10,
            deadline_rounds: None,
        };
        assert_eq!(c.offer(poor), AdmissionDecision::Rejected(RejectReason::Infeasible));
        // A zero-round deadline on a query that must ask tasks.
        let rushed = QueryRequest {
            query: 2,
            estimate: est(4, 100),
            budget_cents: 100,
            deadline_rounds: Some(0),
        };
        assert_eq!(c.offer(rushed), AdmissionDecision::Rejected(RejectReason::Infeasible));
    }

    #[test]
    fn arrivals_behind_a_queue_wait_their_turn() {
        // Even with free slots, an arrival behind queued queries queues —
        // FIFO admission, no overtaking.
        let mut c = AdmissionController::new(Envelope {
            budget_cents: 1_000,
            max_active: 1,
            queue_capacity: 8,
        });
        assert_eq!(c.offer(req(1, 10)), AdmissionDecision::Admitted);
        assert_eq!(c.offer(req(2, 10)), AdmissionDecision::Queued { position: 0 });
        c.complete(&est(4, 10));
        assert_eq!(c.offer(req(3, 10)), AdmissionDecision::Queued { position: 1 });
        let wave = c.admit_wave();
        assert_eq!(wave.iter().map(|r| r.query).collect::<Vec<_>>(), vec![2]);
    }
}
