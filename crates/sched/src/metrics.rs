//! Aggregate scheduler counters as a `cdb-obsv` collector.
//!
//! Like `RuntimeMetrics`, these counters are *derived from the event
//! stream*: [`SchedMetrics`] implements [`cdb_obsv::Collector`] and folds
//! the `sched.*` events the scheduler emits. Because the counters and any
//! richer sink (ring buffer, attribution) consume the same stream, they
//! can never disagree — the conservation check
//! ([`SchedSnapshot::conservation_mismatches`]) is then a real invariant,
//! not a tautology.

use std::sync::atomic::{AtomicU64, Ordering};

use cdb_obsv::attr::{keys, names};
use cdb_obsv::{Collector, Event};

/// Lock-free scheduler counters (one instance shared across a run).
#[derive(Debug, Default)]
pub struct SchedMetrics {
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
    rounds: AtomicU64,
    hits: AtomicU64,
    tasks: AtomicU64,
    platform_cents: AtomicU64,
    attributed_cents: AtomicU64,
}

impl SchedMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SchedMetrics::default()
    }

    /// Freeze the counters into a snapshot.
    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            platform_cents: self.platform_cents.load(Ordering::Relaxed),
            attributed_cents: self.attributed_cents.load(Ordering::Relaxed),
        }
    }
}

impl Collector for SchedMetrics {
    fn record(&self, event: &Event) {
        match event.name {
            names::SCHED_ADMIT => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
            }
            names::SCHED_QUEUE => {
                self.queued.fetch_add(1, Ordering::Relaxed);
            }
            names::SCHED_REJECT => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
            names::SCHED_ROUND => {
                self.rounds.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(event.get_u64(keys::HITS).unwrap_or(0), Ordering::Relaxed);
                self.tasks.fetch_add(event.get_u64(keys::N).unwrap_or(0), Ordering::Relaxed);
                self.platform_cents
                    .fetch_add(event.get_u64(keys::CENTS).unwrap_or(0), Ordering::Relaxed);
            }
            names::SCHED_COST => {
                self.attributed_cents
                    .fetch_add(event.get_u64(keys::CENTS).unwrap_or(0), Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// Frozen scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedSnapshot {
    /// Queries admitted (any wave).
    pub admitted: u64,
    /// Queries that waited in the bounded queue.
    pub queued: u64,
    /// Queries rejected at admission.
    pub rejected: u64,
    /// Global scheduler rounds.
    pub rounds: u64,
    /// HITs published across all global rounds.
    pub hits: u64,
    /// Tasks carried across all global rounds.
    pub tasks: u64,
    /// Platform spend across all global rounds, in cents.
    pub platform_cents: u64,
    /// Per-query attributed spend, summed, in cents.
    pub attributed_cents: u64,
}

impl SchedSnapshot {
    /// The scheduler's conservation invariant: per-query attributed cost
    /// must sum exactly to the platform spend. Returns one line per
    /// disagreement (empty = invariant holds).
    pub fn conservation_mismatches(&self) -> Vec<String> {
        if self.attributed_cents == self.platform_cents {
            Vec::new()
        } else {
            vec![format!(
                "sched cents: attributed={} platform={}",
                self.attributed_cents, self.platform_cents
            )]
        }
    }
}
