//! End-to-end scheduler tests: fairness, determinism, batching
//! neutrality, backpressure and cents conservation.

use std::sync::Arc;

use cdb_core::executor::EdgeTruth;
use cdb_core::model::{NodeId, PartKind, QueryGraph};
use cdb_obsv::attr::Attribution;
use cdb_obsv::{Ring, Trace};
use cdb_runtime::{QueryJob, RuntimeConfig};
use cdb_sched::{
    AdmissionDecision, DrrConfig, Envelope, RejectReason, SchedConfig, SchedJob, Scheduler,
};

/// A single-join query: `a_i` joins `b_j` iff `i % nb == j`.
fn join_job(id: u64, na: usize, nb: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let p = g.add_predicate(a, b, true, format!("A{id}~B{id}"));
    let mut truth = EdgeTruth::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % nb == j);
        }
    }
    QueryJob { id, graph: g, truth }
}

/// A small crowd-selection query: `t_i CROWDEQUAL lit` true for even `i`.
fn select_job(id: u64, n: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let t = g.add_part(PartKind::Table { name: format!("T{id}") });
    let c = g.add_part(PartKind::Constant { value: format!("lit{id}") });
    let tn: Vec<NodeId> = (0..n).map(|i| g.add_node(t, None, format!("t{i}"))).collect();
    let cn = g.add_node(c, None, format!("lit{id}"));
    let p = g.add_predicate(t, c, true, format!("T{id} CROWDEQUAL lit{id}"));
    let mut truth = EdgeTruth::new();
    for (i, &x) in tn.iter().enumerate() {
        let e = g.add_edge(x, cn, p, 0.5);
        truth.insert(e, i % 2 == 0);
    }
    QueryJob { id, graph: g, truth }
}

fn perfect_runtime(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        threads,
        seed: 42,
        worker_accuracies: vec![1.0; 30],
        ..RuntimeConfig::default()
    }
}

fn submissions() -> Vec<SchedJob> {
    // One large join + 4 small selections — the fairness workload.
    let mut subs = vec![SchedJob::unconstrained(join_job(0, 12, 8))];
    for q in 1..=4 {
        subs.push(SchedJob::unconstrained(select_job(q, 4)));
    }
    subs
}

fn sched_cfg(threads: usize, batching: bool) -> SchedConfig {
    SchedConfig {
        runtime: perfect_runtime(threads),
        batching,
        drr: DrrConfig { quantum: 10, capacity: None },
        ..SchedConfig::default()
    }
}

/// Solo round count per query: run each alone through the scheduler.
fn solo_rounds(threads: usize) -> Vec<(u64, usize)> {
    submissions()
        .into_iter()
        .map(|sub| {
            let id = sub.job.id;
            let report = Scheduler::new(sched_cfg(threads, false)).run(vec![sub]);
            let (_, r) = report.results.first().expect("one result");
            let rounds = r.as_ref().expect("solo run succeeds").round_tasks.len();
            (id, rounds)
        })
        .collect()
}

#[test]
fn fairness_small_queries_finish_within_k_times_solo() {
    // The regression the DRR layer exists for: admitted together with a
    // large join, each small selection must complete within k× its solo
    // round count. With quantum ≥ the selections' per-round tasks, k = 1.
    let solos = solo_rounds(4);
    let report = Scheduler::new(sched_cfg(4, true)).run(submissions());
    assert_eq!(report.results.len(), 5);
    let k = 1;
    for q in 1..=4u64 {
        let solo = solos.iter().find(|&&(id, _)| id == q).unwrap().1;
        let done = 1 + *report.completion_round.get(&q).expect("query completed");
        assert!(
            done <= k * solo,
            "query {q} finished in {done} global rounds, solo {solo} (k = {k})"
        );
    }
    // And the join was not starved either: it completed, spread over more
    // rounds than its solo count (that is the fair-share trade).
    let join_solo = solos.iter().find(|&&(id, _)| id == 0).unwrap().1;
    let join_done = 1 + report.completion_round[&0];
    assert!(join_done >= join_solo);
}

#[test]
fn scheduled_runs_replay_byte_identically_across_thread_counts() {
    let run = |threads| {
        let r = Scheduler::new(sched_cfg(threads, true)).run(submissions());
        (r.bindings_text(), format!("{:?}", r.rounds), r.platform_cents, r.total_hits)
    };
    let base = run(1);
    assert_eq!(base, run(4));
    assert_eq!(base, run(8));
}

#[test]
fn batching_changes_billing_never_bindings() {
    let on = Scheduler::new(sched_cfg(4, true)).run(submissions());
    let off = Scheduler::new(sched_cfg(4, false)).run(submissions());
    assert_eq!(on.bindings_text(), off.bindings_text(), "bindings must be byte-identical");
    // Same tasks in the same global rounds either way…
    let tasks = |r: &cdb_sched::SchedReport| {
        r.rounds.iter().map(|x| x.contributions.clone()).collect::<Vec<_>>()
    };
    assert_eq!(tasks(&on), tasks(&off));
    // …but shared packing publishes fewer HITs and spends less.
    assert_eq!(off.total_hits, off.solo_hits);
    assert!(
        on.total_hits < off.total_hits,
        "batching must cut HITs: {} vs {}",
        on.total_hits,
        off.total_hits
    );
    assert!(on.platform_cents < off.platform_cents);
    assert!(on.hit_reduction() > 0.0);
}

#[test]
fn conservation_attributed_cents_equal_platform_cents() {
    let ring = Arc::new(Ring::with_capacity(1 << 16));
    let cfg = SchedConfig { trace: Trace::collector(ring.clone()), ..sched_cfg(2, true) };
    let report = Scheduler::new(cfg).run(submissions());
    // Report-level books.
    let attributed: u64 = report.attributed_cents.values().sum();
    assert_eq!(attributed, report.platform_cents);
    assert!(report.platform_cents > 0);
    // Counter-level books (the SchedMetrics collector saw every event).
    assert!(report.metrics.conservation_mismatches().is_empty());
    assert_eq!(report.metrics.platform_cents, report.platform_cents);
    assert_eq!(report.metrics.hits, report.total_hits as u64);
    // Event-level books: the obsv attribution rollup agrees field by field.
    let a = Attribution::from_events(&ring.drain());
    assert!(a.sched_mismatches().is_empty());
    assert_eq!(a.sched_platform_cents, report.platform_cents);
    assert_eq!(a.sched_hits, report.total_hits as u64);
    for (q, cents) in &report.attributed_cents {
        assert_eq!(a.queries[q].sched_cost_cents, *cents, "query {q}");
    }
}

#[test]
fn admission_backpressure_queues_in_waves_and_rejects_past_the_bound() {
    let cfg = SchedConfig {
        envelope: Envelope { budget_cents: u64::MAX, max_active: 2, queue_capacity: 2 },
        ..sched_cfg(2, true)
    };
    let report = Scheduler::new(cfg).run(submissions());
    // 2 admitted, 2 queued, 1 rejected by the bounded queue.
    assert_eq!(report.decisions[0].1, AdmissionDecision::Admitted);
    assert_eq!(report.decisions[1].1, AdmissionDecision::Admitted);
    assert!(matches!(report.decisions[2].1, AdmissionDecision::Queued { position: 0 }));
    assert!(matches!(report.decisions[3].1, AdmissionDecision::Queued { position: 1 }));
    assert_eq!(
        report.decisions[4].1,
        AdmissionDecision::Rejected(RejectReason::QueueFull { capacity: 2 })
    );
    // The queued queries ran in a second wave; the rejected one never ran.
    assert_eq!(report.waves, 2);
    assert_eq!(report.results.len(), 4);
    assert!(report.results.iter().all(|&(id, _)| id != 4));
    assert_eq!(report.metrics.admitted, 4, "wave promotion re-emits sched.admit");
    assert_eq!(report.metrics.queued, 2);
    assert_eq!(report.metrics.rejected, 1);
    // Conservation holds across waves too.
    assert!(report.metrics.conservation_mismatches().is_empty());
}

#[test]
fn infeasible_and_overbudget_queries_are_rejected_with_typed_reasons() {
    let mut subs = submissions();
    subs[1].budget_cents = 1; // cannot cover its own envelope
    let cfg = SchedConfig {
        // Join envelope: 96 unknown edges × 5 workers × 5¢ = 2400¢; cap
        // the global budget below it.
        envelope: Envelope { budget_cents: 1_000, max_active: 8, queue_capacity: 8 },
        ..sched_cfg(2, true)
    };
    let report = Scheduler::new(cfg).run(subs);
    assert!(matches!(
        report.decisions[0].1,
        AdmissionDecision::Rejected(RejectReason::BudgetExceeded { .. })
    ));
    assert_eq!(report.decisions[1].1, AdmissionDecision::Rejected(RejectReason::Infeasible));
    for d in &report.decisions[2..] {
        assert_eq!(d.1, AdmissionDecision::Admitted);
    }
    assert_eq!(report.results.len(), 3);
}

#[test]
fn scheduled_bindings_match_a_plain_runtime_run() {
    // With a generous envelope everything admits into one wave, and the
    // scheduler's execution IS the plain runtime's — same bindings, byte
    // for byte.
    let jobs: Vec<QueryJob> = submissions().into_iter().map(|s| s.job).collect();
    let plain = cdb_runtime::RuntimeExecutor::new(perfect_runtime(4)).run(jobs).bindings_text();
    let sched = Scheduler::new(sched_cfg(4, true)).run(submissions()).bindings_text();
    assert_eq!(sched, plain);
}
