//! The durable-cache lifecycle property: closing and reopening the
//! [`DurableReuseCache`] at *any* point in a settle/absorb history is
//! unobservable. A process that restarts after every few queries must end
//! with exactly the entailment state of a process that never dies —
//! same resolve outcomes for every pair, same recorded crowd answers.
//!
//! This is the equivalence the replay argument in `cdb_store::dur`
//! claims; the proptest drives it across random histories, including
//! conflicting answers and restarts landing between any two batches.

use cdb_core::{ReuseCache, SettleSink, SettledFact};
use cdb_store::{DurableReuseCache, ScratchDir};
use proptest::prelude::*;

const MEASURES: [&str; 2] = ["life.a~b", "life.c~d"];

fn value(i: u8) -> String {
    format!("item #{}", i % 6)
}

/// One query's buys: (measure, left, right, same) draws.
type Batch = Vec<(u8, u8, u8, bool)>;

/// Mirror the executor's settle-then-absorb path for one query session:
/// record every buy against a snapshot, durably settle the fresh facts
/// (when there are any and a sink is attached), then absorb.
fn run_query(cache: &ReuseCache, sink: Option<&DurableReuseCache>, query: u64, batch: &Batch) {
    let mut session = cache.snapshot();
    for &(m, l, r, same) in batch {
        session.record(MEASURES[(m % 2) as usize], &value(l), &value(r), same);
    }
    let facts: Vec<SettledFact> = session
        .fresh_facts()
        .iter()
        .map(|(measure, left, right, same)| SettledFact {
            measure: measure.clone(),
            left: left.clone(),
            right: right.clone(),
            same: *same,
            votes: 3,
            cents: 15,
        })
        .collect();
    if let Some(sink) = sink {
        if !facts.is_empty() {
            sink.settle(query, &facts).expect("settle");
        }
    }
    cache.absorb(&session);
}

/// Every pair the history could have touched, on both measures.
fn all_outcomes(cache: &ReuseCache) -> Vec<String> {
    let mut out = Vec::new();
    for measure in MEASURES {
        for a in 0..6u8 {
            for b in 0..6u8 {
                out.push(format!("{:?}", cache.resolve(measure, &value(a), &value(b))));
            }
        }
    }
    out
}

proptest! {
    /// open → settle/absorb → close → open ≡ never closing, for every
    /// interleaving of restarts with query batches.
    #[test]
    fn restarts_are_unobservable(
        history in prop::collection::vec(
            (prop::collection::vec((0u8..2, 0u8..6, 0u8..6, any::<bool>()), 0..5), any::<bool>()),
            0..8,
        ),
    ) {
        let dir = ScratchDir::new("lifecycle");
        let immortal = ReuseCache::new();
        let mut durable = Some(DurableReuseCache::open(dir.path()).expect("open"));
        for (query, (batch, restart_after)) in history.iter().enumerate() {
            let d = durable.as_ref().expect("durable cache live");
            run_query(&immortal, None, query as u64, batch);
            run_query(&d.cache(), Some(d), query as u64, batch);
            if *restart_after {
                drop(durable.take()); // crash: drop every in-memory structure
                durable = Some(DurableReuseCache::open(dir.path()).expect("reopen"));
            }
        }
        // One final restart so the comparison always crosses a replay.
        drop(durable);
        let recovered = DurableReuseCache::open(dir.path()).expect("final reopen");
        prop_assert_eq!(all_outcomes(&recovered.cache()), all_outcomes(&immortal));
        prop_assert_eq!(recovered.cache().recorded(), immortal.recorded());
    }
}
