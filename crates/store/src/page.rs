//! Slotted pages: the fixed-size unit the file store reads and writes.
//!
//! Layout of one 4096-byte page:
//!
//! ```text
//! 0        4        8          10         12            free_off      slot_dir
//! +--------+--------+----------+----------+-------------+---- ... ----+--------+
//! | crc32  | page_no| slot_cnt | free_off | record bytes |   free      | slots  |
//! +--------+--------+----------+----------+-------------+---- ... ----+--------+
//! ```
//!
//! Records are appended at `free_off`; the slot directory (4 bytes per
//! slot: `offset u16`, `len u16`) grows backwards from the page end.
//! `crc32` covers bytes `4..4096` and is recomputed by [`Page::seal`]
//! just before the page hits disk; [`Page::from_bytes`] verifies it on
//! the way back in, so a torn page write is detected as
//! [`StoreError::PageChecksum`] rather than silently decoded.

use crate::crc::crc32;
use crate::error::{Result, StoreError};

/// Size of every page in the store file, in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Bytes reserved for the page header (checksum, number, slot count, free offset).
pub const PAGE_HEADER: usize = 12;
/// Bytes one slot-directory entry occupies (`offset u16` + `len u16`).
pub const SLOT_SIZE: usize = 4;
/// Largest record payload a single page can hold (one slot, empty page).
pub const MAX_SLOT_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER - SLOT_SIZE;

/// One in-memory page image with slotted-record accessors.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("page_no", &self.page_no())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Page {
    /// A fresh, empty page numbered `page_no`.
    pub fn new(page_no: u32) -> Page {
        let mut p = Page { data: Box::new([0u8; PAGE_SIZE]) };
        p.data[4..8].copy_from_slice(&page_no.to_le_bytes());
        p.set_free_off(PAGE_HEADER as u16);
        p
    }

    /// Rehydrate a page read from disk, verifying its checksum and that
    /// it is the page the caller asked for.
    pub fn from_bytes(expect_page_no: u32, bytes: [u8; PAGE_SIZE]) -> Result<Page> {
        let p = Page { data: Box::new(bytes) };
        let stored = u32::from_le_bytes([p.data[0], p.data[1], p.data[2], p.data[3]]);
        if stored != crc32(&p.data[4..]) {
            return Err(StoreError::PageChecksum { page: expect_page_no });
        }
        if p.page_no() != expect_page_no {
            return Err(StoreError::PageChecksum { page: expect_page_no });
        }
        Ok(p)
    }

    /// Recompute the header checksum. Call immediately before writing
    /// the page image to disk.
    pub fn seal(&mut self) {
        let c = crc32(&self.data[4..]);
        self.data[0..4].copy_from_slice(&c.to_le_bytes());
    }

    /// The raw 4096-byte image (valid for disk only after [`Page::seal`]).
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable access to the raw image — test-only corruption hook.
    #[cfg(test)]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// The page number stamped in the header.
    pub fn page_no(&self) -> u32 {
        u32::from_le_bytes([self.data[4], self.data[5], self.data[6], self.data[7]])
    }

    /// Number of records stored in this page.
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[8], self.data[9]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[8..10].copy_from_slice(&n.to_le_bytes());
    }

    fn free_off(&self) -> u16 {
        u16::from_le_bytes([self.data[10], self.data[11]])
    }

    fn set_free_off(&mut self, off: u16) {
        self.data[10..12].copy_from_slice(&off.to_le_bytes());
    }

    fn slot_dir_start(&self) -> usize {
        PAGE_SIZE - self.slot_count() as usize * SLOT_SIZE
    }

    /// Bytes still available for one more record (slot entry already
    /// accounted for); 0 when even an empty record would not fit.
    pub fn free_space(&self) -> usize {
        let gap = self.slot_dir_start() - self.free_off() as usize;
        gap.saturating_sub(SLOT_SIZE)
    }

    /// Append `payload` as a new record, returning its slot index.
    pub fn insert(&mut self, payload: &[u8]) -> Result<u16> {
        if payload.len() > self.free_space() {
            return Err(StoreError::RecordTooLarge { len: payload.len() });
        }
        let off = self.free_off() as usize;
        self.data[off..off + payload.len()].copy_from_slice(payload);
        let slot = self.slot_count();
        let entry = PAGE_SIZE - (slot as usize + 1) * SLOT_SIZE;
        self.data[entry..entry + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.data[entry + 2..entry + 4].copy_from_slice(&(payload.len() as u16).to_le_bytes());
        self.set_slot_count(slot + 1);
        self.set_free_off((off + payload.len()) as u16);
        Ok(slot)
    }

    /// The payload stored at `slot`.
    pub fn record(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(StoreError::Decode {
                detail: format!(
                    "slot {slot} out of range (page {} has {})",
                    self.page_no(),
                    self.slot_count()
                ),
            });
        }
        let entry = PAGE_SIZE - (slot as usize + 1) * SLOT_SIZE;
        let off = u16::from_le_bytes([self.data[entry], self.data[entry + 1]]) as usize;
        let len = u16::from_le_bytes([self.data[entry + 2], self.data[entry + 3]]) as usize;
        if off + len > PAGE_SIZE {
            return Err(StoreError::Decode {
                detail: format!("slot {slot} points past page end ({off}+{len})"),
            });
        }
        Ok(&self.data[off..off + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back_multiple_records() {
        let mut p = Page::new(3);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"").unwrap();
        let c = p.insert(b"gamma-gamma").unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(p.record(0).unwrap(), b"alpha");
        assert_eq!(p.record(1).unwrap(), b"");
        assert_eq!(p.record(2).unwrap(), b"gamma-gamma");
        assert!(p.record(3).is_err());
    }

    #[test]
    fn seal_then_verify_round_trips() {
        let mut p = Page::new(9);
        p.insert(b"durable").unwrap();
        p.seal();
        let back = Page::from_bytes(9, *p.bytes()).unwrap();
        assert_eq!(back.record(0).unwrap(), b"durable");
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let mut p = Page::new(4);
        p.insert(b"truth is expensive").unwrap();
        p.seal();
        let mut bytes = *p.bytes();
        bytes[100] ^= 0xFF; // corrupt one record byte after sealing
        let err = Page::from_bytes(4, bytes).unwrap_err();
        assert_eq!(err, StoreError::PageChecksum { page: 4 });
    }

    #[test]
    fn wrong_page_number_is_rejected() {
        let mut p = Page::new(4);
        p.seal();
        assert!(Page::from_bytes(5, *p.bytes()).is_err());
    }

    #[test]
    fn fills_to_capacity_then_refuses() {
        let mut p = Page::new(0);
        let big = vec![0xAB; MAX_SLOT_PAYLOAD];
        p.insert(&big).unwrap();
        assert_eq!(p.free_space(), 0);
        let err = p.insert(b"x").unwrap_err();
        assert!(matches!(err, StoreError::RecordTooLarge { .. }));
    }
}
