//! The durable cross-query reuse cache: a [`ReuseCache`] whose contents
//! are rebuilt from the crowd answer log on every open, plus the
//! [`SettleSink`] the runtime calls to make new answers durable before
//! they become visible for reuse.
//!
//! # Replay order is absorb order
//!
//! The live executor absorbs sessions in ascending query-id order and
//! [`ReuseCache::absorb`] is first-writer-wins: once a `(measure, pair)`
//! key holds an answer, a later contradicting answer is dropped as a
//! conflict. The log preserves exactly that order — queries are settled
//! in the same ascending order immediately before being absorbed, and
//! each settle batch is a session's `fresh_facts()` in record order.
//! First-writer-wins makes the final store a left fold of `record` over
//! the fact sequence, so replaying the whole log through *one* session
//! and absorbing once reproduces the identical store: same winners, same
//! conflicts, same `resolve` results. The lifecycle proptest in
//! `tests/lifecycle.rs` pins this equivalence.

use std::path::Path;
use std::sync::{Arc, Mutex};

use cdb_core::{ReuseCache, ReuseOutcome, SettleSink, SettledFact};

use crate::alog::{AnswerLog, AnswerRecovery};
use crate::error::Result;
use crate::wal::DEFAULT_SEGMENT_BYTES;

/// A [`ReuseCache`] backed by a crash-safe answer log.
#[derive(Debug)]
pub struct DurableReuseCache {
    cache: Arc<ReuseCache>,
    log: Mutex<AnswerLog>,
    recovery: AnswerRecovery,
    replay_snapshots: u64,
}

impl DurableReuseCache {
    /// Open with the default WAL segment size.
    pub fn open(dir: &Path) -> Result<DurableReuseCache> {
        DurableReuseCache::open_with(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// Open (or create) the cache rooted at `dir`, replaying the answer
    /// log: all settled facts are recorded through one session in log
    /// order and absorbed once, rebuilding the entailment graphs exactly
    /// as the uninterrupted process built them (see the module docs — the
    /// store is a fold over the fact sequence, so batching the replay
    /// into one session changes nothing). One snapshot/absorb cycle per
    /// batch — the previous scheme — forced `absorb`'s copy-on-write to
    /// deep-clone the whole accumulated store every batch, making
    /// recovery superlinear in log length.
    pub fn open_with(dir: &Path, segment_bytes: u64) -> Result<DurableReuseCache> {
        let (log, recovery) = AnswerLog::open(dir, segment_bytes)?;
        let cache = Arc::new(ReuseCache::new());
        let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::REUSE_REPLAY);
        let mut replay_snapshots = 0u64;
        let mut session = cache.snapshot();
        for (_query, facts) in &recovery.settled {
            for f in facts {
                session.record(&f.measure, &f.left, &f.right, f.same);
            }
            replay_snapshots += 1;
        }
        if replay_snapshots > 0 {
            cache.absorb(&session);
        }
        ph.set(cdb_obsv::attr::keys::N, replay_snapshots);
        drop(ph);
        Ok(DurableReuseCache { cache, log: Mutex::new(log), recovery, replay_snapshots })
    }

    /// The in-memory cache to hand to `RuntimeConfig::reuse`. Shares
    /// state with this durable wrapper: absorbs go through the normal
    /// executor path, durability through [`SettleSink::settle`].
    pub fn cache(&self) -> Arc<ReuseCache> {
        Arc::clone(&self.cache)
    }

    /// What opening found on disk (settled batches, dropped facts, torn
    /// tail) — the recovery evidence the sim checker asserts over.
    pub fn recovery(&self) -> &AnswerRecovery {
        &self.recovery
    }

    /// Settled batches replayed at open time. (All batches flow through
    /// a single session now; the count still reports batches for
    /// compatibility with existing recovery assertions.) Zero on a cold
    /// (empty) open.
    pub fn replay_snapshots(&self) -> u64 {
        self.replay_snapshots
    }

    /// Cents durably settled across the log's whole history.
    pub fn logged_cents(&self) -> u64 {
        self.log.lock().expect("answer log poisoned").logged_cents()
    }

    /// Facts durably settled across the log's whole history.
    pub fn logged_facts(&self) -> u64 {
        self.log.lock().expect("answer log poisoned").logged_facts()
    }

    /// Settle markers durably written across the log's whole history.
    pub fn logged_queries(&self) -> u64 {
        self.log.lock().expect("answer log poisoned").logged_queries()
    }

    /// Non-mutating resolve against the rebuilt cache.
    pub fn resolve(&self, measure: &str, left: &str, right: &str) -> ReuseOutcome {
        self.cache.resolve(measure, left, right)
    }
}

impl SettleSink for DurableReuseCache {
    fn settle(&self, query: u64, facts: &[SettledFact]) -> std::result::Result<(), String> {
        self.log
            .lock()
            .expect("answer log poisoned")
            .append_settled(query, facts)
            .map_err(|e| format!("settle query {query}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    const M: &str = "R.v~S.v";

    fn settle(cache: &DurableReuseCache, query: u64, facts: &[(&str, &str, bool)]) {
        let session_facts: Vec<SettledFact> = facts
            .iter()
            .map(|(l, r, same)| SettledFact {
                measure: M.into(),
                left: l.to_string(),
                right: r.to_string(),
                same: *same,
                votes: 3,
                cents: 15,
            })
            .collect();
        // Mirror the executor: durable first, then absorb.
        cache.settle(query, &session_facts).unwrap();
        let mut session = cache.cache().snapshot();
        for f in &session_facts {
            session.record(&f.measure, &f.left, &f.right, f.same);
        }
        cache.cache().absorb(&session);
    }

    #[test]
    fn reopen_rebuilds_entailment_not_just_answers() {
        let dir = ScratchDir::new("dur-entail");
        {
            let cache = DurableReuseCache::open(dir.path()).unwrap();
            settle(&cache, 0, &[("a", "b", true), ("b", "c", true)]);
            assert!(matches!(cache.resolve(M, "a", "c"), ReuseOutcome::Hit { same: true, .. }));
        }
        let cache = DurableReuseCache::open(dir.path()).unwrap();
        // a~c was never recorded directly; only rebuilt transitivity
        // can answer it after the restart.
        assert!(matches!(cache.resolve(M, "a", "c"), ReuseOutcome::Hit { same: true, .. }));
        assert!(matches!(cache.resolve(M, "c", "a"), ReuseOutcome::Hit { same: true, .. }));
        assert!(matches!(cache.resolve(M, "a", "z"), ReuseOutcome::Miss));
        assert_eq!(cache.recovery().settled_cents(), 30);
        assert_eq!(cache.logged_facts(), 2);
    }

    #[test]
    fn conflicts_replay_first_writer_wins() {
        let dir = ScratchDir::new("dur-conflict");
        {
            let cache = DurableReuseCache::open(dir.path()).unwrap();
            // Two concurrent queries bought contradicting answers from
            // the same (empty) snapshot; the executor settles + absorbs
            // in id order, so query 0 wins and query 1's buy is dropped.
            let mut s0 = cache.cache().snapshot();
            let mut s1 = cache.cache().snapshot();
            s0.record(M, "x", "y", true);
            s1.record(M, "x", "y", false);
            for (q, s) in [(0u64, &s0), (1u64, &s1)] {
                let facts: Vec<SettledFact> = s
                    .fresh_facts()
                    .iter()
                    .map(|(m, l, r, same)| SettledFact {
                        measure: m.clone(),
                        left: l.clone(),
                        right: r.clone(),
                        same: *same,
                        votes: 3,
                        cents: 15,
                    })
                    .collect();
                cache.settle(q, &facts).unwrap();
                cache.cache().absorb(s);
            }
            assert_eq!(cache.cache().conflicts(), 1);
            assert!(matches!(cache.resolve(M, "x", "y"), ReuseOutcome::Hit { same: true, .. }));
            assert_eq!(cache.logged_cents(), 30); // both buys were real money
        }
        let cache = DurableReuseCache::open(dir.path()).unwrap();
        // The winner and the recorded-answer list replay identically;
        // query 1's losing buy is re-dropped during replay (this time at
        // session level, so the conflict counter — absorb-time telemetry,
        // not entailment state — reads 0 after a restart).
        assert!(matches!(cache.resolve(M, "x", "y"), ReuseOutcome::Hit { same: true, .. }));
        assert_eq!(cache.cache().recorded(), vec![(M.into(), "x".into(), "y".into(), true)]);
        assert_eq!(cache.logged_cents(), 30);
    }

    #[test]
    fn settle_without_absorb_is_still_recovered() {
        let dir = ScratchDir::new("dur-crashgap");
        {
            let cache = DurableReuseCache::open(dir.path()).unwrap();
            // Crash after the settle point but before absorb: durable
            // state must win on reopen.
            let f = SettledFact {
                measure: M.into(),
                left: "p".into(),
                right: "q".into(),
                same: true,
                votes: 3,
                cents: 15,
            };
            cache.settle(5, std::slice::from_ref(&f)).unwrap();
            assert!(matches!(cache.resolve(M, "p", "q"), ReuseOutcome::Miss));
        }
        let cache = DurableReuseCache::open(dir.path()).unwrap();
        assert!(matches!(cache.resolve(M, "p", "q"), ReuseOutcome::Hit { same: true, .. }));
    }
}
