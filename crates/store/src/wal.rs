//! Append-only write-ahead log with CRC-framed records and segment
//! rotation.
//!
//! One frame on disk:
//!
//! ```text
//! +---------+---------+----------------+
//! | len u32 | crc u32 | payload (len)  |
//! +---------+---------+----------------+
//! ```
//!
//! `crc` is the CRC-32 of the payload. Frames are appended to segment
//! files `wal-NNNNNNNN.log`; when the active segment would exceed the
//! configured size, the log syncs it and rotates to the next index.
//!
//! Recovery ([`Wal::open`]) replays every frame of every segment in
//! order. A bad frame at the tail of the *last* segment is the expected
//! signature of a crash mid-append: the tail is truncated at the last
//! valid frame and reported in the [`RecoveryReport`]. A bad frame
//! anywhere else means the settled prefix was damaged and surfaces as
//! [`StoreError::WalCorrupt`] — recovery refuses to guess.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::{Result, StoreError};

/// Upper bound on one frame's payload; lengths above this are treated as
/// corruption rather than an allocation request.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

/// Default segment rotation threshold (bytes).
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments: u64,
    /// Valid frames replayed.
    pub records: u64,
    /// Total valid payload bytes replayed.
    pub bytes: u64,
    /// Present when the last segment ended in a torn frame that was
    /// truncated away: `(segment index, byte offset, reason)`.
    pub torn: Option<(u64, u64, String)>,
}

/// A segmented, checksummed append-only log rooted at one directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    cur_index: u64,
    cur_file: File,
    cur_size: u64,
}

/// Existing segment files under `dir`, sorted by segment index.
pub fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io("list wal dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("list wal dir", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("wal-") && name.ends_with(".log") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

fn segment_index(path: &Path) -> u64 {
    path.file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_prefix("wal-"))
        .and_then(|n| n.strip_suffix(".log"))
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.log"))
}

fn open_segment(path: &Path) -> Result<File> {
    OpenOptions::new()
        .read(true)
        .append(true)
        .create(true)
        .open(path)
        .map_err(|e| StoreError::io(&format!("open wal segment {}", path.display()), e))
}

/// Scan one segment's frames. Returns the offset where valid data ends
/// and, if the segment ends in garbage, the reason. `sink` receives each
/// valid payload.
fn scan_segment(
    index: u64,
    path: &Path,
    sink: &mut impl FnMut(Vec<u8>),
) -> Result<(u64, Option<(u64, String)>)> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| StoreError::io(&format!("read wal segment {index}"), e))?;
    let mut off = 0usize;
    loop {
        if off == raw.len() {
            return Ok((off as u64, None));
        }
        if raw.len() - off < 8 {
            return Ok((off as u64, Some((off as u64, "truncated frame header".into()))));
        }
        let len = u32::from_le_bytes([raw[off], raw[off + 1], raw[off + 2], raw[off + 3]]);
        let crc = u32::from_le_bytes([raw[off + 4], raw[off + 5], raw[off + 6], raw[off + 7]]);
        if len == 0 || len > MAX_FRAME_PAYLOAD {
            return Ok((off as u64, Some((off as u64, format!("implausible frame length {len}")))));
        }
        let body = off + 8;
        if raw.len() - body < len as usize {
            return Ok((off as u64, Some((off as u64, "truncated frame body".into()))));
        }
        let payload = &raw[body..body + len as usize];
        if crc32(payload) != crc {
            return Ok((off as u64, Some((off as u64, "frame checksum mismatch".into()))));
        }
        sink(payload.to_vec());
        off = body + len as usize;
    }
}

impl Wal {
    /// Open (creating if needed) the log under `dir`, replaying every
    /// settled frame through `sink` and repairing a torn tail. Returns
    /// the writable log positioned after the last valid frame.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        mut sink: impl FnMut(Vec<u8>),
    ) -> Result<(Wal, RecoveryReport)> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create wal dir", e))?;
        let paths = segment_paths(dir)?;
        let mut report = RecoveryReport { segments: paths.len() as u64, ..Default::default() };
        let mut counted = |payload: Vec<u8>| {
            report.records += 1;
            report.bytes += payload.len() as u64;
            sink(payload);
        };
        let mut last: Option<(u64, u64)> = None; // (index, valid length)
        for (i, path) in paths.iter().enumerate() {
            let index = segment_index(path);
            let (valid_end, bad) = scan_segment(index, path, &mut counted)?;
            if let Some((offset, reason)) = bad {
                if i + 1 != paths.len() {
                    // Damage before the final segment is not a crash tail.
                    return Err(StoreError::WalCorrupt { segment: index, offset, reason });
                }
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| StoreError::io("open wal segment for repair", e))?;
                f.set_len(valid_end).map_err(|e| StoreError::io("truncate torn wal tail", e))?;
                f.sync_all().map_err(|e| StoreError::io("sync repaired wal segment", e))?;
                report.torn = Some((index, offset, reason));
            }
            last = Some((index, valid_end));
        }
        let (cur_index, cur_size) = last.unwrap_or((0, 0));
        let cur_file = open_segment(&segment_path(dir, cur_index))?;
        if report.segments == 0 {
            report.segments = 1;
        }
        let wal = Wal { dir: dir.to_path_buf(), segment_bytes, cur_index, cur_file, cur_size };
        Ok((wal, report))
    }

    /// Append one frame. Rotates to a fresh segment first when the
    /// active one is full (the old segment is synced before rotation so
    /// rotation never un-settles data).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if payload.is_empty() || payload.len() as u64 > MAX_FRAME_PAYLOAD as u64 {
            return Err(StoreError::RecordTooLarge { len: payload.len() });
        }
        let frame_len = 8 + payload.len() as u64;
        if self.cur_size > 0 && self.cur_size + frame_len > self.segment_bytes {
            self.sync()?;
            self.cur_index += 1;
            self.cur_file = open_segment(&segment_path(&self.dir, self.cur_index))?;
            self.cur_size = 0;
        }
        let mut frame = Vec::with_capacity(frame_len as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.cur_file.write_all(&frame).map_err(|e| StoreError::io("append wal frame", e))?;
        self.cur_size += frame_len;
        Ok(())
    }

    /// Fsync the active segment — the durability point for everything
    /// appended so far.
    pub fn sync(&mut self) -> Result<()> {
        let _ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::WAL_FSYNC);
        self.cur_file.sync_all().map_err(|e| StoreError::io("sync wal segment", e))
    }

    /// Number of segments (index of the active segment + 1).
    pub fn segments(&self) -> u64 {
        self.cur_index + 1
    }

    /// Bytes in the active segment.
    pub fn active_segment_bytes(&self) -> u64 {
        self.cur_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn collect(dir: &Path, segment_bytes: u64) -> (Wal, Vec<Vec<u8>>, RecoveryReport) {
        let mut got = Vec::new();
        let (wal, report) = Wal::open(dir, segment_bytes, |p| got.push(p)).unwrap();
        (wal, got, report)
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let dir = ScratchDir::new("wal-empty");
        let (_, got, report) = collect(dir.path(), 1024);
        assert!(got.is_empty());
        assert_eq!(report.records, 0);
        assert!(report.torn.is_none());

        // A present-but-zero-length segment is equally fine.
        std::fs::write(segment_path(dir.path(), 0), b"").unwrap();
        let (_, got, report) = collect(dir.path(), 1024);
        assert!(got.is_empty());
        assert_eq!((report.segments, report.records), (1, 0));
        assert!(report.torn.is_none());
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let dir = ScratchDir::new("wal-roundtrip");
        {
            let (mut wal, _, _) = collect(dir.path(), 1 << 16);
            wal.append(b"first").unwrap();
            wal.append(b"second, longer record").unwrap();
            wal.sync().unwrap();
        }
        let (mut wal, got, report) = collect(dir.path(), 1 << 16);
        assert_eq!(got, vec![b"first".to_vec(), b"second, longer record".to_vec()]);
        assert_eq!(report.records, 2);
        wal.append(b"third").unwrap();
        wal.sync().unwrap();
        let (_, got, _) = collect(dir.path(), 1 << 16);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn rotation_boundary_preserves_every_record() {
        let dir = ScratchDir::new("wal-rotate");
        // Each frame is 8 + 10 = 18 bytes; a 40-byte segment holds two.
        let (mut wal, _, _) = collect(dir.path(), 40);
        for i in 0..7u8 {
            wal.append(&[i; 10]).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.segments(), 4); // 2 + 2 + 2 + 1
        let (_, got, report) = collect(dir.path(), 40);
        assert_eq!(report.segments, 4);
        assert_eq!(got, (0..7u8).map(|i| vec![i; 10]).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = ScratchDir::new("wal-torn");
        {
            let (mut wal, _, _) = collect(dir.path(), 1 << 16);
            wal.append(b"committed").unwrap();
            wal.append(b"doomed-but-complete").unwrap();
            wal.sync().unwrap();
        }
        // Chop the last frame mid-payload, as a crash mid-write would.
        let path = segment_path(dir.path(), 0);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut wal, got, report) = collect(dir.path(), 1 << 16);
        assert_eq!(got, vec![b"committed".to_vec()]);
        let (seg, off, _) = report.torn.clone().unwrap();
        assert_eq!(seg, 0);
        assert_eq!(off, 8 + 9); // right after the surviving frame
                                // The tail was physically removed: appends resume cleanly.
        wal.append(b"after recovery").unwrap();
        wal.sync().unwrap();
        let (_, got, report) = collect(dir.path(), 1 << 16);
        assert_eq!(got, vec![b"committed".to_vec(), b"after recovery".to_vec()]);
        assert!(report.torn.is_none());
    }

    #[test]
    fn bitflip_in_tail_frame_is_a_torn_tail() {
        let dir = ScratchDir::new("wal-flip");
        {
            let (mut wal, _, _) = collect(dir.path(), 1 << 16);
            wal.append(b"alpha").unwrap();
            wal.append(b"omega").unwrap();
            wal.sync().unwrap();
        }
        let path = segment_path(dir.path(), 0);
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let (_, got, report) = collect(dir.path(), 1 << 16);
        assert_eq!(got, vec![b"alpha".to_vec()]);
        assert!(report.torn.unwrap().2.contains("checksum"));
    }

    #[test]
    fn corruption_before_the_final_segment_is_fatal() {
        let dir = ScratchDir::new("wal-midrot");
        {
            let (mut wal, _, _) = collect(dir.path(), 40);
            for i in 0..5u8 {
                wal.append(&[i; 10]).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segments() > 1);
        }
        let first = segment_path(dir.path(), 0);
        let mut raw = std::fs::read(&first).unwrap();
        raw[10] ^= 0xFF;
        std::fs::write(&first, &raw).unwrap();
        let err = Wal::open(dir.path(), 40, |_| {}).unwrap_err();
        assert!(matches!(err, StoreError::WalCorrupt { segment: 0, .. }), "got {err:?}");
    }
}
