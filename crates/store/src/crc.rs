//! CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum guarding
//! every page and every WAL frame. Table-driven, std-only; the table is
//! built once at first use.

use std::sync::OnceLock;

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// zlib/`cksum -o 3` convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"crowd answers are expensive");
        let mut flipped = b"crowd answers are expensive".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
