//! Self-cleaning scratch directories for tests and simulation.
//!
//! Recovery tests (here and in `cdb-sim`) need a real filesystem
//! location that is unique per use — the simulator's shrinker replays
//! the same seed many times in one process, so uniqueness cannot come
//! from the seed alone. [`ScratchDir`] combines the process id with a
//! global counter and removes the directory on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, deleted
/// (recursively, best-effort) when dropped.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create `"<tmp>/cdb-store-<label>-<pid>-<n>"`, wiping any stale
    /// leftover with the same name first.
    pub fn new(label: &str) -> ScratchDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("cdb-store-{label}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = ScratchDir::new("x");
        let b = ScratchDir::new("x");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
