//! The file-backed pager and its pinning buffer pool.
//!
//! [`Pager`] maps page numbers to 4096-byte offsets in a single file and
//! verifies checksums on every read. [`BufferPool`] keeps a bounded set
//! of resident pages with pin counts: pinned pages can never be evicted,
//! unpinned pages leave in least-recently-used order, and dirty victims
//! are written back before their frame is reused. Multi-page records are
//! chained through [`BufferPool::write_chain`] / [`read_chain`], which is
//! how the durable database lays whole table snapshots onto free pages.
//!
//! [`read_chain`]: BufferPool::read_chain

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{Result, StoreError};
use crate::page::{Page, MAX_SLOT_PAYLOAD, PAGE_SIZE};

/// Address of a stored record: the page holding its first chunk plus the
/// slot index within that page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordId {
    /// Page number of the first chunk.
    pub page: u32,
    /// Slot within that page.
    pub slot: u16,
}

/// Byte overhead of one chain-chunk header (`next_page u32` + `next_slot u16`).
const CHAIN_HEADER: usize = 6;
/// Payload bytes one chain chunk can carry.
const CHAIN_CHUNK: usize = MAX_SLOT_PAYLOAD - CHAIN_HEADER;

/// Positioned page I/O over one store file.
#[derive(Debug)]
pub struct Pager {
    file: File,
    pages: u32,
}

impl Pager {
    /// Open (creating if absent) the store file at `path`.
    pub fn open(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io(&format!("open {}", path.display()), e))?;
        let len = file.metadata().map_err(|e| StoreError::io("stat store file", e))?.len();
        Ok(Pager { file, pages: (len / PAGE_SIZE as u64) as u32 })
    }

    /// Pages currently addressable (written or allocated).
    pub fn page_count(&self) -> u32 {
        self.pages
    }

    /// Read and checksum-verify page `no`.
    pub fn read_page(&mut self, no: u32) -> Result<Page> {
        if no >= self.pages {
            return Err(StoreError::PageOutOfBounds { page: no, count: self.pages });
        }
        self.file
            .seek(SeekFrom::Start(no as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::io("seek page", e))?;
        let mut buf = [0u8; PAGE_SIZE];
        self.file.read_exact(&mut buf).map_err(|e| StoreError::io("read page", e))?;
        Page::from_bytes(no, buf)
    }

    /// Seal and write `page` at its own page number.
    pub fn write_page(&mut self, page: &mut Page) -> Result<()> {
        page.seal();
        let no = page.page_no();
        self.file
            .seek(SeekFrom::Start(no as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::io("seek page", e))?;
        self.file.write_all(&page.bytes()[..]).map_err(|e| StoreError::io("write page", e))?;
        if no >= self.pages {
            self.pages = no + 1;
        }
        Ok(())
    }

    /// Reserve the next page number past the end of the file.
    pub fn allocate(&mut self) -> u32 {
        let no = self.pages;
        self.pages += 1;
        no
    }

    /// Flush the file (and its metadata) to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_all().map_err(|e| StoreError::io("sync store file", e))
    }
}

#[derive(Debug)]
struct Frame {
    page: Page,
    pins: usize,
    dirty: bool,
    touched: u64,
}

/// A bounded cache of resident pages over a [`Pager`].
#[derive(Debug)]
pub struct BufferPool {
    pager: Pager,
    capacity: usize,
    frames: HashMap<u32, Frame>,
    tick: u64,
    evictions: u64,
}

impl BufferPool {
    /// Cache up to `capacity` pages of `pager` (capacity must be ≥ 1).
    pub fn new(pager: Pager, capacity: usize) -> BufferPool {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool { pager, capacity, frames: HashMap::new(), tick: 0, evictions: 0 }
    }

    /// Pages on the underlying file.
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Unpinned-victim write-backs performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, no: u32) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(f) = self.frames.get_mut(&no) {
            f.touched = tick;
        }
    }

    /// Evict one unpinned frame (LRU) to make room; error if all pinned.
    fn make_room(&mut self) -> Result<()> {
        if self.frames.len() < self.capacity {
            return Ok(());
        }
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.touched)
            .map(|(no, _)| *no)
            .ok_or(StoreError::PoolExhausted { capacity: self.capacity })?;
        let mut frame = self.frames.remove(&victim).expect("victim frame present");
        if frame.dirty {
            self.pager.write_page(&mut frame.page)?;
        }
        self.evictions += 1;
        Ok(())
    }

    /// Bring page `no` into the pool (reading it if absent) and pin it.
    pub fn pin(&mut self, no: u32) -> Result<()> {
        if let Some(f) = self.frames.get_mut(&no) {
            f.pins += 1;
        } else {
            self.make_room()?;
            let page = self.pager.read_page(no)?;
            self.frames.insert(no, Frame { page, pins: 1, dirty: false, touched: 0 });
        }
        self.touch(no);
        Ok(())
    }

    /// Allocate a fresh empty page, resident and pinned.
    pub fn allocate(&mut self) -> Result<u32> {
        self.make_room()?;
        let no = self.pager.allocate();
        self.frames.insert(no, Frame { page: Page::new(no), pins: 1, dirty: true, touched: 0 });
        self.touch(no);
        Ok(no)
    }

    /// Release one pin on page `no`, marking it dirty if it was mutated.
    pub fn unpin(&mut self, no: u32, dirty: bool) {
        if let Some(f) = self.frames.get_mut(&no) {
            debug_assert!(f.pins > 0, "unpin of unpinned page {no}");
            f.pins = f.pins.saturating_sub(1);
            f.dirty |= dirty;
        }
    }

    /// Read access to a resident (pinned) page.
    pub fn page(&self, no: u32) -> Option<&Page> {
        self.frames.get(&no).map(|f| &f.page)
    }

    /// Write access to a resident (pinned) page. The caller still passes
    /// `dirty = true` on unpin; this accessor alone does not mark it.
    pub fn page_mut(&mut self, no: u32) -> Option<&mut Page> {
        self.frames.get_mut(&no).map(|f| &mut f.page)
    }

    /// Write back every dirty frame and fsync the file.
    pub fn flush(&mut self) -> Result<()> {
        let mut dirty: Vec<u32> =
            self.frames.iter().filter(|(_, f)| f.dirty).map(|(no, _)| *no).collect();
        dirty.sort_unstable();
        for no in dirty {
            let frame = self.frames.get_mut(&no).expect("dirty frame present");
            self.pager.write_page(&mut frame.page)?;
            frame.dirty = false;
        }
        self.pager.sync()
    }

    /// Store `data` as a chain of single-slot chunks over `free` pages
    /// (new pages are allocated once `free` is exhausted). Returns the
    /// id of the first chunk. Chunks are written tail-first so each can
    /// embed its successor's address.
    pub fn write_chain(&mut self, free: &mut Vec<u32>, data: &[u8]) -> Result<RecordId> {
        let chunks: Vec<&[u8]> =
            if data.is_empty() { vec![data] } else { data.chunks(CHAIN_CHUNK).collect() };
        // Page 0 is a meta page, so (0, 0) is free to mean "no successor".
        let mut next = RecordId { page: 0, slot: 0 };
        for chunk in chunks.iter().rev() {
            let no = match free.pop() {
                Some(no) => {
                    self.pin(no)?;
                    let page = self.page_mut(no).expect("pinned page resident");
                    *page = Page::new(no);
                    no
                }
                None => self.allocate()?,
            };
            let mut payload = Vec::with_capacity(CHAIN_HEADER + chunk.len());
            payload.extend_from_slice(&next.page.to_le_bytes());
            payload.extend_from_slice(&next.slot.to_le_bytes());
            payload.extend_from_slice(chunk);
            let slot = self.page_mut(no).expect("pinned page resident").insert(&payload)?;
            self.unpin(no, true);
            next = RecordId { page: no, slot };
        }
        Ok(next)
    }

    /// Read back a record stored by [`BufferPool::write_chain`].
    pub fn read_chain(&mut self, id: RecordId) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.walk_chain(id, |chunk| out.extend_from_slice(chunk))?;
        Ok(out)
    }

    /// The pages a chained record occupies, in chain order. The durable
    /// database uses this to compute the live-page set before reusing
    /// anything as scratch space.
    pub fn chain_pages(&mut self, id: RecordId) -> Result<Vec<u32>> {
        let mut pages = Vec::new();
        let mut cur = id;
        while cur.page != 0 {
            pages.push(cur.page);
            self.pin(cur.page)?;
            let next = {
                let page = self.page(cur.page).expect("pinned page resident");
                let rec = page.record(cur.slot)?;
                chain_next(rec)?
            };
            self.unpin(cur.page, false);
            if pages.len() as u32 > self.page_count() {
                return Err(StoreError::Decode { detail: "record chain forms a cycle".into() });
            }
            cur = next;
        }
        Ok(pages)
    }

    fn walk_chain(&mut self, id: RecordId, mut sink: impl FnMut(&[u8])) -> Result<()> {
        let mut cur = id;
        let mut hops = 0u32;
        while cur.page != 0 {
            self.pin(cur.page)?;
            let next = {
                let page = self.page(cur.page).expect("pinned page resident");
                let rec = page.record(cur.slot)?;
                let next = chain_next(rec)?;
                sink(&rec[CHAIN_HEADER..]);
                next
            };
            self.unpin(cur.page, false);
            hops += 1;
            if hops > self.page_count() {
                return Err(StoreError::Decode { detail: "record chain forms a cycle".into() });
            }
            cur = next;
        }
        Ok(())
    }
}

fn chain_next(rec: &[u8]) -> Result<RecordId> {
    if rec.len() < CHAIN_HEADER {
        return Err(StoreError::Decode {
            detail: format!("chain chunk of {} bytes is shorter than its header", rec.len()),
        });
    }
    Ok(RecordId {
        page: u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]),
        slot: u16::from_le_bytes([rec[4], rec[5]]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn pool(dir: &ScratchDir, capacity: usize) -> BufferPool {
        // Reserve page 0 as a stand-in meta page so chains never use it.
        let mut pool =
            BufferPool::new(Pager::open(&dir.path().join("data.cdb")).unwrap(), capacity);
        if pool.page_count() == 0 {
            let no = pool.allocate().unwrap();
            assert_eq!(no, 0);
            pool.unpin(no, true);
        }
        pool
    }

    #[test]
    fn chain_round_trips_small_and_multi_page_records() {
        let dir = ScratchDir::new("pool-chain");
        let mut pool = pool(&dir, 8);
        let small = b"tiny".to_vec();
        let big: Vec<u8> = (0..3 * PAGE_SIZE + 17).map(|i| (i % 251) as u8).collect();
        let empty: Vec<u8> = Vec::new();

        let mut free = Vec::new();
        let a = pool.write_chain(&mut free, &small).unwrap();
        let b = pool.write_chain(&mut free, &big).unwrap();
        let c = pool.write_chain(&mut free, &empty).unwrap();
        pool.flush().unwrap();

        assert_eq!(pool.read_chain(a).unwrap(), small);
        assert_eq!(pool.read_chain(b).unwrap(), big);
        assert_eq!(pool.read_chain(c).unwrap(), empty);
        assert_eq!(pool.chain_pages(b).unwrap().len(), 4);
    }

    #[test]
    fn survives_reopen() {
        let dir = ScratchDir::new("pool-reopen");
        let id;
        let payload: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 7) as u8).collect();
        {
            let mut pool = pool(&dir, 4);
            id = pool.write_chain(&mut Vec::new(), &payload).unwrap();
            pool.flush().unwrap();
        }
        let mut pool = pool(&dir, 4);
        assert_eq!(pool.read_chain(id).unwrap(), payload);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let dir = ScratchDir::new("pool-evict");
        let mut pool = pool(&dir, 2);
        // Three multi-page-ish records through a 2-frame pool forces
        // evictions; the data must still read back correctly.
        let mut ids = Vec::new();
        let mut free = Vec::new();
        for i in 0..3u8 {
            let data = vec![i; PAGE_SIZE + 100];
            ids.push((pool.write_chain(&mut free, &data).unwrap(), data));
        }
        assert!(pool.evictions() > 0);
        for (id, data) in ids {
            assert_eq!(pool.read_chain(id).unwrap(), data);
        }
        assert!(pool.resident() <= 2);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let dir = ScratchDir::new("pool-exhausted");
        let mut pool = pool(&dir, 1);
        // Frame 1 holds page 0 pinned; asking for another page cannot evict.
        pool.pin(0).unwrap();
        let err = pool.allocate().unwrap_err();
        assert_eq!(err, StoreError::PoolExhausted { capacity: 1 });
        pool.unpin(0, false);
        assert!(pool.allocate().is_ok());
    }

    #[test]
    fn reopen_detects_on_disk_corruption() {
        let dir = ScratchDir::new("pool-corrupt");
        let path = dir.path().join("data.cdb");
        {
            let mut pool = BufferPool::new(Pager::open(&path).unwrap(), 4);
            let no = pool.allocate().unwrap();
            pool.page_mut(no).unwrap().insert(b"settled fact").unwrap();
            pool.unpin(no, true);
            pool.flush().unwrap();
        }
        // Flip one byte of the record body on disk.
        let mut raw = std::fs::read(&path).unwrap();
        raw[40] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let mut pool = BufferPool::new(Pager::open(&path).unwrap(), 4);
        assert_eq!(pool.pin(0).unwrap_err(), StoreError::PageChecksum { page: 0 });
    }
}
