//! The durable database: `cdb-storage` tables persisted through the
//! paged store.
//!
//! [`Database`] wraps the in-memory [`cdb_storage::Database`] (and
//! derefs to it, so every existing caller keeps working verbatim) and
//! adds an on-disk home. The file layout:
//!
//! * **Pages 0 and 1** are *double-buffered meta pages*. Each holds one
//!   record `(magic, seq, catalog RecordId)`; the valid page with the
//!   higher `seq` names the live snapshot. [`Database::flush`] writes a
//!   complete new snapshot onto pages the live snapshot does **not**
//!   use, fsyncs it, and only then overwrites the *stale* meta slot with
//!   `seq + 1` and fsyncs again. A crash at any point leaves the old
//!   meta slot naming the old, fully-intact snapshot — the flush is
//!   atomic at page-checksum granularity.
//! * **Pages ≥ 2** hold snapshot data as chained slotted records (see
//!   [`crate::pager::BufferPool::write_chain`]); pages freed by a
//!   superseded snapshot are reused by the next flush.
//!
//! Durability is *explicit*: mutations happen in memory at full speed
//! and [`Database::flush`] is the only fsync point, mirroring how the
//! answer log (not the table store) is the authority on crowd spend.

use std::ops::{Deref, DerefMut};
use std::path::Path;

use cdb_storage::{ColumnDef, ColumnType, Schema, Table, Value};

use crate::codec::{put_bool, put_f64, put_i64, put_str, put_u32, put_u64, put_u8_tag, Cursor};
use crate::error::{Result, StoreError};
use crate::page::Page;
use crate::pager::{BufferPool, Pager, RecordId};

const MAGIC: u32 = 0x4344_4253; // "CDBS"
const META_PAGES: u32 = 2;
const POOL_CAPACITY: usize = 64;

const VAL_CNULL: u8 = 0;
const VAL_TEXT: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;

/// What one [`Database::flush`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushStats {
    /// Snapshot pages the new catalog chain occupies.
    pub pages: u32,
    /// Encoded snapshot size in bytes.
    pub bytes: u64,
    /// The committed meta sequence number.
    pub seq: u64,
}

#[derive(Debug)]
struct Disk {
    pool: BufferPool,
    seq: u64,
    meta_slot: u32,
    catalog: RecordId,
}

/// A `cdb-storage` database with an optional on-disk home.
///
/// Derefs to [`cdb_storage::Database`], so `add_table`, `table`,
/// `table_mut`, `tables` and friends all work unchanged; only
/// [`Database::open`], [`Database::flush`] and
/// [`Database::open_in_memory`] are new surface.
#[derive(Debug)]
pub struct Database {
    inner: cdb_storage::Database,
    disk: Option<Disk>,
}

impl Database {
    /// A volatile database, exactly like `cdb_storage::Database::new()`.
    /// [`Database::flush`] is a no-op.
    pub fn open_in_memory() -> Database {
        Database { inner: cdb_storage::Database::new(), disk: None }
    }

    /// Open (creating if absent) the durable database stored in the file
    /// at `path`, loading the last flushed snapshot.
    pub fn open(path: &Path) -> Result<Database> {
        let mut pool = BufferPool::new(Pager::open(path)?, POOL_CAPACITY);
        if pool.page_count() == 0 {
            // Fresh file: lay down both meta slots; slot 0 (seq 1, empty
            // catalog) is live, slot 1 (seq 0) is the first flush target.
            for no in 0..META_PAGES {
                let got = pool.allocate()?;
                debug_assert_eq!(got, no);
                let page = pool.page_mut(no).expect("fresh meta page resident");
                let seq = if no == 0 { 1 } else { 0 };
                page.insert(&encode_meta(seq, RecordId { page: 0, slot: 0 }))?;
                pool.unpin(no, true);
            }
            pool.flush()?;
            let disk = Disk { pool, seq: 1, meta_slot: 0, catalog: RecordId { page: 0, slot: 0 } };
            return Ok(Database { inner: cdb_storage::Database::new(), disk: Some(disk) });
        }

        // Existing file: the valid meta slot with the highest seq names
        // the live snapshot. One slot failing its checksum is the
        // expected signature of a crash mid-meta-write — not an error.
        let mut best: Option<(u32, u64, RecordId)> = None;
        for no in 0..META_PAGES.min(pool.page_count()) {
            match pool.pin(no) {
                Ok(()) => {
                    let page = pool.page(no).expect("pinned meta page resident");
                    if let Ok((seq, catalog)) = decode_meta(page) {
                        if best.map(|(_, s, _)| seq > s).unwrap_or(true) {
                            best = Some((no, seq, catalog));
                        }
                    }
                    pool.unpin(no, false);
                }
                Err(StoreError::PageChecksum { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        let (meta_slot, seq, catalog) = best.ok_or(StoreError::NoValidMeta)?;
        let inner = if catalog.page == 0 {
            cdb_storage::Database::new()
        } else {
            let blob = pool.read_chain(catalog)?;
            decode_snapshot(&blob)?
        };
        Ok(Database { inner, disk: Some(Disk { pool, seq, meta_slot, catalog }) })
    }

    /// True when backed by a file (flush persists; reopen restores).
    pub fn is_durable(&self) -> bool {
        self.disk.is_some()
    }

    /// The committed snapshot sequence number (`None` in memory).
    pub fn seq(&self) -> Option<u64> {
        self.disk.as_ref().map(|d| d.seq)
    }

    /// Write the current tables to disk as a new snapshot and commit it.
    /// On an in-memory database this is a no-op reporting zero pages.
    pub fn flush(&mut self) -> Result<FlushStats> {
        let Some(disk) = self.disk.as_mut() else {
            return Ok(FlushStats { pages: 0, bytes: 0, seq: 0 });
        };
        let blob = encode_snapshot(&self.inner);

        // Pages the live snapshot still needs; everything else past the
        // meta pages is scratch for the new one.
        let mut live = vec![false; disk.pool.page_count() as usize];
        if disk.catalog.page != 0 {
            for no in disk.pool.chain_pages(disk.catalog)? {
                live[no as usize] = true;
            }
        }
        let mut free: Vec<u32> =
            (META_PAGES..disk.pool.page_count()).filter(|&no| !live[no as usize]).rev().collect();

        let new_catalog = disk.pool.write_chain(&mut free, &blob)?;
        let pages = disk.pool.chain_pages(new_catalog)?.len() as u32;
        disk.pool.flush()?; // snapshot durable before the meta flip

        let stale = 1 - disk.meta_slot;
        let seq = disk.seq + 1;
        disk.pool.pin(stale)?;
        {
            let page = disk.pool.page_mut(stale).expect("pinned meta page resident");
            *page = Page::new(stale);
            page.insert(&encode_meta(seq, new_catalog))?;
        }
        disk.pool.unpin(stale, true);
        disk.pool.flush()?; // the commit point

        disk.seq = seq;
        disk.meta_slot = stale;
        disk.catalog = new_catalog;
        Ok(FlushStats { pages, bytes: blob.len() as u64, seq })
    }
}

impl Deref for Database {
    type Target = cdb_storage::Database;
    fn deref(&self) -> &cdb_storage::Database {
        &self.inner
    }
}

impl DerefMut for Database {
    fn deref_mut(&mut self) -> &mut cdb_storage::Database {
        &mut self.inner
    }
}

fn encode_meta(seq: u64, catalog: RecordId) -> Vec<u8> {
    let mut buf = Vec::with_capacity(18);
    put_u32(&mut buf, MAGIC);
    put_u64(&mut buf, seq);
    put_u32(&mut buf, catalog.page);
    buf.extend_from_slice(&catalog.slot.to_le_bytes());
    buf
}

fn decode_meta(page: &Page) -> Result<(u64, RecordId)> {
    let rec = page.record(0)?;
    let mut c = Cursor::new(rec);
    if c.u32()? != MAGIC {
        return Err(StoreError::Decode { detail: "meta page magic mismatch".into() });
    }
    let seq = c.u64()?;
    let catalog = RecordId { page: c.u32()?, slot: c.u16()? };
    Ok((seq, catalog))
}

fn encode_snapshot(db: &cdb_storage::Database) -> Vec<u8> {
    let mut buf = Vec::new();
    let tables: Vec<&Table> = db.tables().collect();
    put_u32(&mut buf, tables.len() as u32);
    for t in tables {
        put_str(&mut buf, t.name());
        put_bool(&mut buf, t.is_crowd());
        let cols = t.schema().columns();
        put_u32(&mut buf, cols.len() as u32);
        for col in cols {
            put_str(&mut buf, &col.name);
            put_u8_tag(
                &mut buf,
                match col.ty {
                    ColumnType::Text => 0,
                    ColumnType::Int => 1,
                    ColumnType::Float => 2,
                },
            );
            put_bool(&mut buf, col.crowd);
        }
        put_u64(&mut buf, t.row_count() as u64);
        for row in t.rows() {
            for v in row {
                match v {
                    Value::CNull => put_u8_tag(&mut buf, VAL_CNULL),
                    Value::Text(s) => {
                        put_u8_tag(&mut buf, VAL_TEXT);
                        put_str(&mut buf, s);
                    }
                    Value::Int(i) => {
                        put_u8_tag(&mut buf, VAL_INT);
                        put_i64(&mut buf, *i);
                    }
                    Value::Float(f) => {
                        put_u8_tag(&mut buf, VAL_FLOAT);
                        put_f64(&mut buf, *f);
                    }
                }
            }
        }
    }
    buf
}

fn decode_snapshot(blob: &[u8]) -> Result<cdb_storage::Database> {
    let mut db = cdb_storage::Database::new();
    let mut c = Cursor::new(blob);
    let tables = c.u32()?;
    for _ in 0..tables {
        let name = c.str()?;
        let crowd = c.bool()?;
        let cols = c.u32()?;
        let mut defs = Vec::with_capacity(cols as usize);
        for _ in 0..cols {
            let col_name = c.str()?;
            let ty = match c.u8()? {
                0 => ColumnType::Text,
                1 => ColumnType::Int,
                2 => ColumnType::Float,
                t => return Err(StoreError::Decode { detail: format!("bad column type tag {t}") }),
            };
            let col_crowd = c.bool()?;
            defs.push(if col_crowd {
                ColumnDef::crowd(col_name, ty)
            } else {
                ColumnDef::new(col_name, ty)
            });
        }
        let arity = defs.len();
        let schema = Schema::new(defs);
        let mut table =
            if crowd { Table::new_crowd(&name, schema) } else { Table::new(&name, schema) };
        let rows = c.u64()?;
        for _ in 0..rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(match c.u8()? {
                    VAL_CNULL => Value::CNull,
                    VAL_TEXT => Value::Text(c.str()?),
                    VAL_INT => Value::Int(c.i64()?),
                    VAL_FLOAT => Value::Float(c.f64()?),
                    t => return Err(StoreError::Decode { detail: format!("bad value tag {t}") }),
                });
            }
            table.push(row)?;
        }
        db.add_table(table)?;
    }
    if !c.is_empty() {
        return Err(StoreError::Decode {
            detail: format!("{} trailing bytes after snapshot", c.remaining()),
        });
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn sample_table(name: &str, rows: usize) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::crowd("brand", ColumnType::Text),
            ColumnDef::new("price", ColumnType::Float),
        ]);
        let mut t = Table::new_crowd(name, schema);
        for i in 0..rows {
            let brand =
                if i % 3 == 0 { Value::CNull } else { Value::Text(format!("brand-{}", i % 7)) };
            t.push(vec![Value::Int(i as i64), brand, Value::Float(i as f64 * 0.5)]).unwrap();
        }
        t
    }

    #[test]
    fn open_flush_reopen_round_trips_tables() {
        let dir = ScratchDir::new("db-roundtrip");
        let path = dir.path().join("tables.cdb");
        let reference;
        {
            let mut db = Database::open(&path).unwrap();
            db.add_table(sample_table("products", 50)).unwrap();
            db.add_table(sample_table("reviews", 7)).unwrap();
            let stats = db.flush().unwrap();
            assert!(stats.pages >= 1);
            assert_eq!(stats.seq, 2);
            reference = encode_snapshot(&db);
        }
        let db = Database::open(&path).unwrap();
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.table("products").unwrap().row_count(), 50);
        assert_eq!(encode_snapshot(&db), reference);
    }

    #[test]
    fn unflushed_changes_do_not_survive() {
        let dir = ScratchDir::new("db-unflushed");
        let path = dir.path().join("tables.cdb");
        {
            let mut db = Database::open(&path).unwrap();
            db.add_table(sample_table("kept", 5)).unwrap();
            db.flush().unwrap();
            db.add_table(sample_table("lost", 5)).unwrap();
            // no flush — a crash happens here
        }
        let db = Database::open(&path).unwrap();
        assert!(db.contains_table("kept"));
        assert!(!db.contains_table("lost"));
    }

    #[test]
    fn repeated_flushes_reuse_pages_and_bump_seq() {
        let dir = ScratchDir::new("db-reflush");
        let path = dir.path().join("tables.cdb");
        let mut db = Database::open(&path).unwrap();
        db.add_table(sample_table("t", 200)).unwrap();
        let first = db.flush().unwrap();
        let mut sizes = Vec::new();
        for i in 0..5 {
            db.table_mut("t")
                .unwrap()
                .set_cell(0, "brand", Value::Text(format!("updated-{i}")))
                .unwrap();
            let s = db.flush().unwrap();
            assert_eq!(s.seq, first.seq + 1 + i);
            sizes.push(std::fs::metadata(&path).unwrap().len());
        }
        // Steady-state: two snapshots' worth of pages ping-pong; the file
        // stops growing after the second flush.
        assert_eq!(sizes[1], sizes[4]);
        let db = Database::open(&path).unwrap();
        assert_eq!(
            db.table("t").unwrap().cell(0, "brand").unwrap(),
            &Value::Text("updated-4".into())
        );
    }

    #[test]
    fn torn_meta_write_falls_back_to_previous_snapshot() {
        let dir = ScratchDir::new("db-tornmeta");
        let path = dir.path().join("tables.cdb");
        let meta_slot;
        {
            let mut db = Database::open(&path).unwrap();
            db.add_table(sample_table("v1", 3)).unwrap();
            db.flush().unwrap();
            db.add_table(sample_table("v2", 3)).unwrap();
            db.flush().unwrap();
            meta_slot = db.disk.as_ref().unwrap().meta_slot;
        }
        // Corrupt the *live* meta page, as a torn meta write would: the
        // other slot (previous snapshot) must take over.
        let mut raw = std::fs::read(&path).unwrap();
        let off = meta_slot as usize * crate::page::PAGE_SIZE + 20;
        raw[off] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let db = Database::open(&path).unwrap();
        assert!(db.contains_table("v1"));
        assert!(!db.contains_table("v2"));

        // Destroying both meta slots is unrecoverable — and loud. (A
        // fresh byte offset, so the earlier flip is not undone.)
        let mut raw = std::fs::read(&path).unwrap();
        for slot in 0..2usize {
            raw[slot * crate::page::PAGE_SIZE + 21] ^= 0xFF;
        }
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(Database::open(&path).unwrap_err(), StoreError::NoValidMeta);
    }

    #[test]
    fn in_memory_database_flushes_as_noop() {
        let mut db = Database::open_in_memory();
        db.add_table(sample_table("t", 2)).unwrap();
        assert!(!db.is_durable());
        assert_eq!(db.flush().unwrap(), FlushStats { pages: 0, bytes: 0, seq: 0 });
    }

    #[test]
    fn empty_database_round_trips() {
        let dir = ScratchDir::new("db-empty");
        let path = dir.path().join("tables.cdb");
        {
            let mut db = Database::open(&path).unwrap();
            db.flush().unwrap();
        }
        let db = Database::open(&path).unwrap();
        assert_eq!(db.table_count(), 0);
    }
}
