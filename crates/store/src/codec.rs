//! Hand-rolled little-endian binary codec. The vendored `serde` is an
//! API stub (empty traits), so everything the store writes to disk is
//! encoded explicitly here: fixed-width integers plus length-prefixed
//! UTF-8 strings, with a bounds-checked cursor for decoding.

use crate::error::{Result, StoreError};

/// Append a single tag/flag byte.
pub fn put_u8_tag(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u16` in little-endian order.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` in little-endian order.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a string as `u32` byte length followed by UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Append a bool as a single `0`/`1` byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// Bounds-checked sequential reader over an encoded byte slice. Every
/// accessor returns [`StoreError::Decode`] instead of panicking when the
/// input is short or malformed, so corrupt records surface as errors.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Decode {
                detail: format!("{what}: need {n} bytes, {} left", self.remaining()),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read an IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let b = self.take(len, "str body")?;
        String::from_utf8(b.to_vec())
            .map_err(|e| StoreError::Decode { detail: format!("str not utf-8: {e}") })
    }

    /// Read a bool encoded as a `0`/`1` byte.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Decode { detail: format!("bool byte was {other}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, 2.5);
        put_str(&mut buf, "entailment");
        put_bool(&mut buf, true);

        let mut c = Cursor::new(&buf);
        assert_eq!(c.u16().unwrap(), 0xBEEF);
        assert_eq!(c.u32().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.i64().unwrap(), -42);
        assert_eq!(c.f64().unwrap(), 2.5);
        assert_eq!(c.str().unwrap(), "entailment");
        assert!(c.bool().unwrap());
        assert!(c.is_empty());
    }

    #[test]
    fn short_input_is_a_decode_error_not_a_panic() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(matches!(c.u32(), Err(StoreError::Decode { .. })));
    }

    #[test]
    fn bad_string_length_is_caught() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000); // claims 1000 bytes, provides none
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.str(), Err(StoreError::Decode { .. })));
    }
}
