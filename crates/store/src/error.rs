//! Typed storage errors. Every failure mode of the paged store, the
//! write-ahead log and recovery is a distinct variant, so callers (and
//! the `cdb-sim` recovery checker) can tell honest crash artifacts
//! (a torn tail) from real corruption (a bad checksum mid-log).

use std::fmt;

/// Result alias for the store crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Everything that can go wrong in the durable layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying I/O operation failed. The `io::Error` is flattened
    /// to `(kind, message)` so the error stays `Clone`-able for repro
    /// files and test assertions.
    Io {
        /// `std::io::ErrorKind` as its stable debug name.
        kind: String,
        /// The operation that failed and the OS message.
        detail: String,
    },
    /// A page read back from disk failed its checksum — the page was
    /// torn mid-write or the file was corrupted at rest.
    PageChecksum {
        /// The page number that failed verification.
        page: u32,
    },
    /// A page number beyond the end of the file was requested.
    PageOutOfBounds {
        /// The requested page.
        page: u32,
        /// Pages currently in the file.
        count: u32,
    },
    /// The buffer pool has no evictable frame: every resident page is
    /// pinned. Unpin something before pinning more.
    PoolExhausted {
        /// Configured frame capacity.
        capacity: usize,
    },
    /// A record is too large for the slotted-page chunking limit.
    RecordTooLarge {
        /// The record's size in bytes.
        len: usize,
    },
    /// A WAL segment is corrupt *before* its final record — not a torn
    /// tail (which recovery tolerates by truncation) but damage inside
    /// the settled prefix, which must surface loudly.
    WalCorrupt {
        /// Segment index the bad frame was found in.
        segment: u64,
        /// Byte offset of the bad frame within the segment.
        offset: u64,
        /// What failed (length, checksum, truncation).
        reason: String,
    },
    /// A serialized structure (catalog, table, log record) failed to
    /// decode.
    Decode {
        /// What was being decoded and why it failed.
        detail: String,
    },
    /// The database file has no valid meta page — it is not a cdb-store
    /// file, or both meta slots were destroyed.
    NoValidMeta,
    /// An error bubbled up from the in-memory table layer.
    Storage(cdb_storage::StorageError),
}

impl StoreError {
    /// Flatten an `io::Error` (not `Clone`) into the `Io` variant.
    pub fn io(context: &str, e: std::io::Error) -> StoreError {
        StoreError::Io { kind: format!("{:?}", e.kind()), detail: format!("{context}: {e}") }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { kind, detail } => write!(f, "io error ({kind}): {detail}"),
            StoreError::PageChecksum { page } => write!(f, "page {page} failed its checksum"),
            StoreError::PageOutOfBounds { page, count } => {
                write!(f, "page {page} out of bounds (file has {count})")
            }
            StoreError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            StoreError::RecordTooLarge { len } => write!(f, "record of {len} bytes is too large"),
            StoreError::WalCorrupt { segment, offset, reason } => {
                write!(f, "wal segment {segment} corrupt at offset {offset}: {reason}")
            }
            StoreError::Decode { detail } => write!(f, "decode failed: {detail}"),
            StoreError::NoValidMeta => write!(f, "no valid meta page (not a cdb-store file?)"),
            StoreError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<cdb_storage::StorageError> for StoreError {
    fn from(e: cdb_storage::StorageError) -> Self {
        StoreError::Storage(e)
    }
}
