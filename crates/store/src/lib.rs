//! `cdb-store`: durable paged storage for CDB.
//!
//! Crowd answers are the most expensive artifact a CDB deployment owns —
//! the whole optimization story of *CDB: Optimizing Queries with
//! Crowd-Based Selections and Joins* (SIGMOD 2017) exists to avoid
//! buying an answer twice — yet without this crate a process restart
//! forfeits every cent spent. `cdb-store` gives the three artifacts that
//! matter a crash-safe home:
//!
//! 1. **The crowd answer + provenance log** ([`AnswerLog`]): every
//!    settled `(measure, value-pair, votes, cents)` fact, fsync'd
//!    *before* the engine treats the answer as settled, with a commit
//!    marker separating settled facts from the partial output of failed
//!    or aborted queries.
//! 2. **The durable reuse cache** ([`DurableReuseCache`]): a
//!    [`cdb_core::ReuseCache`] rebuilt from the log on every open, so
//!    cross-query entailment (transitivity-style inference) survives
//!    restarts and never re-buys an answer.
//! 3. **Durable tables** ([`Database`]): `cdb-storage` tables behind a
//!    [`Database::open`] / [`Database::open_in_memory`] split; the
//!    in-memory path and every existing caller are untouched.
//!
//! The substrate is deliberately classical: fixed-size slotted
//! [pages](page) with CRC-32 checksums, a pinning [buffer pool](pager)
//! with LRU eviction, and a length-prefixed, CRC-framed [write-ahead
//! log](wal) with segment rotation and torn-tail repair. Recovery is
//! verified end to end by `cdb-sim`'s kill-and-recover differential
//! scenarios.

#![deny(missing_docs)]

pub mod alog;
pub mod codec;
pub mod crc;
pub mod db;
pub mod dur;
pub mod error;
pub mod page;
pub mod pager;
pub mod scratch;
pub mod wal;

pub use alog::{AnswerLog, AnswerRecovery};
pub use db::{Database, FlushStats};
pub use dur::DurableReuseCache;
pub use error::{Result, StoreError};
pub use page::{Page, PAGE_SIZE};
pub use pager::{BufferPool, Pager, RecordId};
pub use scratch::ScratchDir;
pub use wal::{RecoveryReport, Wal, DEFAULT_SEGMENT_BYTES};
