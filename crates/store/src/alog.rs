//! The crash-safe crowd answer + provenance log.
//!
//! Crowd answers are the most expensive artifact in a CDB deployment, so
//! this log is the system's source of truth for "what has been bought".
//! Two record kinds ride the [`Wal`]:
//!
//! * **Fact** (tag 1): one bought answer —
//!   `(query, measure, left, right, same, votes, cents)`.
//! * **Settle** (tag 2): a commit marker — `(query, fact count)`.
//!
//! [`AnswerLog::append_settled`] writes a query's facts, fsyncs, then
//! writes the marker and fsyncs again. The marker hitting disk is the
//! *settle point*: recovery keeps only marker-covered facts, so a crash
//! between the two fsyncs (facts on disk, no marker) discards them, and
//! a failed or aborted query — which is never settled at all — can never
//! be resurrected by replay.

use std::path::Path;

use cdb_core::SettledFact;

use crate::codec::{put_bool, put_str, put_u32, put_u64, put_u8_tag, Cursor};
use crate::error::{Result, StoreError};
use crate::wal::{RecoveryReport, Wal};

const TAG_FACT: u8 = 1;
const TAG_SETTLE: u8 = 2;

/// What replaying an answer log produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerRecovery {
    /// Marker-committed facts, grouped per settled query, in log order.
    pub settled: Vec<(u64, Vec<SettledFact>)>,
    /// Facts found on disk without a covering settle marker — written by
    /// a query that crashed or aborted before its settle point. Recovery
    /// drops them; they are reported so tests can assert the drop.
    pub dropped_facts: u64,
    /// The underlying WAL scan (segments, frames, torn tail).
    pub wal: RecoveryReport,
}

impl AnswerRecovery {
    /// Total cents across all settled facts.
    pub fn settled_cents(&self) -> u64 {
        self.settled.iter().flat_map(|(_, fs)| fs).map(|f| f.cents).sum()
    }

    /// Total settled facts.
    pub fn settled_facts(&self) -> u64 {
        self.settled.iter().map(|(_, fs)| fs.len() as u64).sum()
    }
}

/// Append-only, fsync-disciplined log of settled crowd answers.
#[derive(Debug)]
pub struct AnswerLog {
    wal: Wal,
    logged_cents: u64,
    logged_facts: u64,
    logged_queries: u64,
}

impl AnswerLog {
    /// Open (or create) the log under `dir`, replaying committed history.
    pub fn open(dir: &Path, segment_bytes: u64) -> Result<(AnswerLog, AnswerRecovery)> {
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let (wal, report) = Wal::open(dir, segment_bytes, |p| frames.push(p))?;

        let mut settled: Vec<(u64, Vec<SettledFact>)> = Vec::new();
        let mut pending: Vec<(u64, SettledFact)> = Vec::new();
        for frame in &frames {
            let mut c = Cursor::new(frame);
            match c.u8()? {
                TAG_FACT => {
                    let query = c.u64()?;
                    let fact = SettledFact {
                        measure: c.str()?,
                        left: c.str()?,
                        right: c.str()?,
                        same: c.bool()?,
                        votes: c.u32()?,
                        cents: c.u64()?,
                    };
                    pending.push((query, fact));
                }
                TAG_SETTLE => {
                    let query = c.u64()?;
                    let count = c.u64()?;
                    let mut facts = Vec::new();
                    pending.retain(|(q, f)| {
                        if *q == query {
                            facts.push(f.clone());
                            false
                        } else {
                            true
                        }
                    });
                    if facts.len() as u64 != count {
                        return Err(StoreError::Decode {
                            detail: format!(
                                "settle marker for query {query} covers {count} facts but {} were pending",
                                facts.len()
                            ),
                        });
                    }
                    settled.push((query, facts));
                }
                tag => {
                    return Err(StoreError::Decode {
                        detail: format!("unknown answer-log record tag {tag}"),
                    })
                }
            }
        }

        let recovery = AnswerRecovery { dropped_facts: pending.len() as u64, settled, wal: report };
        let mut log = AnswerLog { wal, logged_cents: 0, logged_facts: 0, logged_queries: 0 };
        log.logged_cents = recovery.settled_cents();
        log.logged_facts = recovery.settled_facts();
        log.logged_queries = recovery.settled.len() as u64;
        Ok((log, recovery))
    }

    /// Durably settle `facts` for `query`: append every fact frame, fsync,
    /// append the settle marker, fsync again. Returns only once the
    /// marker — the commit point — is on stable storage.
    pub fn append_settled(&mut self, query: u64, facts: &[SettledFact]) -> Result<()> {
        for f in facts {
            let mut buf = Vec::with_capacity(64);
            put_u8_tag(&mut buf, TAG_FACT);
            put_u64(&mut buf, query);
            put_str(&mut buf, &f.measure);
            put_str(&mut buf, &f.left);
            put_str(&mut buf, &f.right);
            put_bool(&mut buf, f.same);
            put_u32(&mut buf, f.votes);
            put_u64(&mut buf, f.cents);
            self.wal.append(&buf)?;
        }
        self.wal.sync()?;
        let mut marker = Vec::with_capacity(17);
        put_u8_tag(&mut marker, TAG_SETTLE);
        put_u64(&mut marker, query);
        put_u64(&mut marker, facts.len() as u64);
        self.wal.append(&marker)?;
        self.wal.sync()?;
        self.logged_queries += 1;
        self.logged_facts += facts.len() as u64;
        self.logged_cents += facts.iter().map(|f| f.cents).sum::<u64>();
        Ok(())
    }

    /// Cents durably settled over the log's whole history (recovered +
    /// appended this process) — the conservation side of the sim's
    /// no-double-spend check.
    pub fn logged_cents(&self) -> u64 {
        self.logged_cents
    }

    /// Facts durably settled over the log's whole history.
    pub fn logged_facts(&self) -> u64 {
        self.logged_facts
    }

    /// Settle markers durably written over the log's whole history.
    pub fn logged_queries(&self) -> u64 {
        self.logged_queries
    }

    /// WAL segments in use.
    pub fn segments(&self) -> u64 {
        self.wal.segments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use crate::wal::DEFAULT_SEGMENT_BYTES;

    fn fact(measure: &str, left: &str, right: &str, same: bool) -> SettledFact {
        SettledFact {
            measure: measure.into(),
            left: left.into(),
            right: right.into(),
            same,
            votes: 3,
            cents: 15,
        }
    }

    #[test]
    fn settled_facts_survive_reopen_in_order() {
        let dir = ScratchDir::new("alog-roundtrip");
        {
            let (mut log, rec) = AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).unwrap();
            assert!(rec.settled.is_empty());
            log.append_settled(7, &[fact("m", "a", "b", true), fact("m", "a", "c", false)])
                .unwrap();
            log.append_settled(9, &[fact("m", "b", "c", false)]).unwrap();
            assert_eq!(log.logged_cents(), 45);
        }
        let (log, rec) = AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(rec.settled.len(), 2);
        assert_eq!(rec.settled[0].0, 7);
        assert_eq!(rec.settled[0].1, vec![fact("m", "a", "b", true), fact("m", "a", "c", false)]);
        assert_eq!(rec.settled[1], (9, vec![fact("m", "b", "c", false)]));
        assert_eq!(rec.dropped_facts, 0);
        assert_eq!(rec.settled_cents(), 45);
        assert_eq!(log.logged_cents(), 45);
    }

    #[test]
    fn unmarked_facts_are_dropped_on_recovery() {
        let dir = ScratchDir::new("alog-unsettled");
        {
            let (mut log, _) = AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).unwrap();
            log.append_settled(1, &[fact("m", "a", "b", true)]).unwrap();
        }
        // Append two fact frames with no settle marker — the on-disk
        // shape of a query that died before its settle point.
        {
            let (mut wal, _) = Wal::open(dir.path(), DEFAULT_SEGMENT_BYTES, |_| {}).unwrap();
            for f in [fact("m", "x", "y", true), fact("m", "x", "z", false)] {
                let mut buf = Vec::new();
                put_u8_tag(&mut buf, TAG_FACT);
                put_u64(&mut buf, 2);
                put_str(&mut buf, &f.measure);
                put_str(&mut buf, &f.left);
                put_str(&mut buf, &f.right);
                put_bool(&mut buf, f.same);
                put_u32(&mut buf, f.votes);
                put_u64(&mut buf, f.cents);
                wal.append(&buf).unwrap();
            }
            wal.sync().unwrap();
        }
        let (log, rec) = AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(rec.settled.len(), 1);
        assert_eq!(rec.dropped_facts, 2);
        assert_eq!(log.logged_cents(), 15); // dropped facts cost nothing durable
    }

    #[test]
    fn empty_settle_is_legal_and_cheap() {
        let dir = ScratchDir::new("alog-emptysettle");
        {
            let (mut log, _) = AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).unwrap();
            log.append_settled(3, &[]).unwrap();
        }
        let (_, rec) = AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(rec.settled, vec![(3, vec![])]);
        assert_eq!(rec.settled_cents(), 0);
    }

    #[test]
    fn rotation_spans_are_replayed_whole() {
        let dir = ScratchDir::new("alog-rotate");
        let n = 40u64;
        {
            // Tiny segments force rotation inside a settle batch.
            let (mut log, _) = AnswerLog::open(dir.path(), 256).unwrap();
            for q in 0..n {
                log.append_settled(q, &[fact("m", &format!("v{q}"), "w", q % 2 == 0)]).unwrap();
            }
            assert!(log.segments() > 1);
        }
        let (_, rec) = AnswerLog::open(dir.path(), 256).unwrap();
        assert_eq!(rec.settled.len(), n as usize);
        assert_eq!(rec.settled_facts(), n);
        assert!(rec.wal.torn.is_none());
    }
}
