//! CQL — the crowd SQL dialect of CDB.
//!
//! CQL extends SQL with crowd-powered operators (Section 3 and Appendix A
//! of the paper):
//!
//! * **DDL**: `CREATE TABLE` may mark columns `CROWD` (fillable by the
//!   crowd) and `CREATE CROWD TABLE` marks a whole table crowd-collected.
//! * **DML query semantics**: `CROWDJOIN` (crowd-powered join) and
//!   `CROWDEQUAL` (crowd-powered selection) appear in `WHERE` clauses next
//!   to ordinary equality predicates.
//! * **DML collection semantics**: `FILL table.column [WHERE …]` and
//!   `COLLECT columns [WHERE …]`.
//! * **BUDGET n** bounds the number of crowdsourcing tasks.
//!
//! # Example
//!
//! ```
//! use cdb_cql::{parse, Statement};
//!
//! let stmt = parse(
//!     "SELECT * FROM Paper, Citation \
//!      WHERE Paper.title CROWDJOIN Citation.title BUDGET 500",
//! ).unwrap();
//! match stmt {
//!     Statement::Select(q) => {
//!         assert_eq!(q.tables, vec!["Paper", "Citation"]);
//!         assert_eq!(q.budget, Some(500));
//!     }
//!     _ => unreachable!(),
//! }
//! ```

mod analyze;
mod ast;
mod error;
mod lexer;
mod parser;

pub use analyze::{analyze_select, AnalyzedPostOp, AnalyzedPredicate, AnalyzedSelect, BoundColumn};
pub use ast::{
    CollectStmt, ColumnRef, ColumnSpec, CreateTable, CrowdPostOp, FillStmt, Literal, Predicate,
    Projection, SelectQuery, Statement, TypeName,
};
pub use error::CqlError;
pub use lexer::{tokenize, Keyword, Token};
pub use parser::parse;

/// Result alias for CQL operations.
pub type Result<T> = std::result::Result<T, CqlError>;
