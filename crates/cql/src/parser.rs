//! Recursive-descent parser for CQL.

use crate::ast::*;
use crate::lexer::{tokenize, Keyword, Token};
use crate::CqlError;

/// Parse one CQL statement (a trailing `;` is allowed).
pub fn parse(input: &str) -> crate::Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semi);
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn found(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t:?}"),
            None => "end of input".to_string(),
        }
    }

    fn err<T>(&self, expected: &str) -> crate::Result<T> {
        Err(CqlError::Parse { expected: expected.to_string(), found: self.found() })
    }

    fn eat_if(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat_if(&Token::Kw(kw))
    }

    fn expect_kw(&mut self, kw: Keyword) -> crate::Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(&format!("keyword {kw:?}"))
        }
    }

    fn expect_tok(&mut self, tok: Token) -> crate::Result<()> {
        if self.eat_if(&tok) {
            Ok(())
        } else {
            self.err(&format!("{tok:?}"))
        }
    }

    fn expect_end(&self) -> crate::Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(CqlError::Parse { expected: "end of statement".into(), found: self.found() })
        }
    }

    fn ident(&mut self) -> crate::Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            // Keywords like `name`/`number` never collide here, but CROWD
            // columns named after keywords are not supported by design.
            other => {
                self.pos = self.pos.saturating_sub(usize::from(other.is_some()));
                self.err("identifier")
            }
        }
    }

    fn statement(&mut self) -> crate::Result<Statement> {
        match self.peek() {
            Some(Token::Kw(Keyword::Select)) => self.select().map(Statement::Select),
            Some(Token::Kw(Keyword::Create)) => self.create_table().map(Statement::CreateTable),
            Some(Token::Kw(Keyword::Fill)) => self.fill().map(Statement::Fill),
            Some(Token::Kw(Keyword::Collect)) => self.collect().map(Statement::Collect),
            _ => self.err("SELECT, CREATE, FILL or COLLECT"),
        }
    }

    // CREATE [CROWD] TABLE name ( col [CROWD] type, ... )
    fn create_table(&mut self) -> crate::Result<CreateTable> {
        self.expect_kw(Keyword::Create)?;
        let crowd = self.eat_kw(Keyword::Crowd);
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        self.expect_tok(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let col_crowd = self.eat_kw(Keyword::Crowd);
            let ty = self.type_name()?;
            columns.push(ColumnSpec { name: col_name, ty, crowd: col_crowd });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect_tok(Token::RParen)?;
        Ok(CreateTable { name, crowd, columns })
    }

    fn type_name(&mut self) -> crate::Result<TypeName> {
        match self.next() {
            Some(Token::Kw(Keyword::Varchar)) => {
                self.expect_tok(Token::LParen)?;
                let n = match self.next() {
                    Some(Token::Int(n)) if n > 0 => n as u32,
                    _ => return self.err("varchar length"),
                };
                self.expect_tok(Token::RParen)?;
                Ok(TypeName::Varchar(n))
            }
            Some(Token::Kw(Keyword::Int)) => Ok(TypeName::Int),
            Some(Token::Kw(Keyword::Float)) => Ok(TypeName::Float),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("type name (varchar/int/float)")
            }
        }
    }

    // SELECT proj FROM tables [WHERE preds] [BUDGET n]
    fn select(&mut self) -> crate::Result<SelectQuery> {
        self.expect_kw(Keyword::Select)?;
        let projection = self.projection()?;
        self.expect_kw(Keyword::From)?;
        let mut tables = vec![self.ident()?];
        while self.eat_if(&Token::Comma) {
            tables.push(self.ident()?);
        }
        let mut predicates = Vec::new();
        if self.eat_kw(Keyword::Where) {
            predicates.push(self.predicate()?);
            while self.eat_kw(Keyword::And) {
                predicates.push(self.predicate()?);
            }
        }
        let group_by = self.crowd_post_op(Keyword::Group)?;
        let order_by = self.crowd_post_op(Keyword::Order)?;
        let budget = self.budget()?;
        Ok(SelectQuery { projection, tables, predicates, group_by, order_by, budget })
    }

    fn projection(&mut self) -> crate::Result<Projection> {
        if self.eat_if(&Token::Star) {
            return Ok(Projection::Star);
        }
        let mut cols = vec![self.projection_item()?];
        while self.eat_if(&Token::Comma) {
            cols.push(self.projection_item()?);
        }
        Ok(Projection::Columns(cols))
    }

    // `Table.col`, `Table.*` (represented with column "*"), or `col`.
    fn projection_item(&mut self) -> crate::Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            if self.eat_if(&Token::Star) {
                return Ok(ColumnRef::qualified(first, "*"));
            }
            let col = self.ident()?;
            Ok(ColumnRef::qualified(first, col))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn column_ref(&mut self) -> crate::Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            let col = self.ident()?;
            Ok(ColumnRef::qualified(first, col))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn literal(&mut self) -> crate::Result<Literal> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Int(i)) => Ok(Literal::Int(i)),
            Some(Token::Float(x)) => Ok(Literal::Float(x)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("literal")
            }
        }
    }

    fn predicate(&mut self) -> crate::Result<Predicate> {
        let left = self.column_ref()?;
        match self.next() {
            Some(Token::Kw(Keyword::CrowdJoin)) => {
                let right = self.column_ref()?;
                Ok(Predicate::CrowdJoin { left, right })
            }
            Some(Token::Kw(Keyword::CrowdEqual)) => {
                let value = self.literal()?;
                Ok(Predicate::CrowdEqual { column: left, value })
            }
            Some(Token::Eq) => {
                // `a = b` (join) vs `a = literal` (selection).
                match self.peek() {
                    Some(Token::Ident(_)) => {
                        let right = self.column_ref()?;
                        Ok(Predicate::EquiJoin { left, right })
                    }
                    _ => {
                        let value = self.literal()?;
                        Ok(Predicate::Equal { column: left, value })
                    }
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("CROWDJOIN, CROWDEQUAL or =")
            }
        }
    }

    // `GROUP BY CROWD col` / `ORDER BY CROWD col [DESC|ASC]`.
    fn crowd_post_op(&mut self, head: Keyword) -> crate::Result<Option<CrowdPostOp>> {
        if !self.eat_kw(head) {
            return Ok(None);
        }
        self.expect_kw(Keyword::By)?;
        self.expect_kw(Keyword::Crowd)?;
        let column = self.column_ref()?;
        let descending = if self.eat_kw(Keyword::Desc) { true } else { !self.eat_kw(Keyword::Asc) };
        Ok(Some(CrowdPostOp { column, descending }))
    }

    fn budget(&mut self) -> crate::Result<Option<usize>> {
        if !self.eat_kw(Keyword::Budget) {
            return Ok(None);
        }
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(Some(n as usize)),
            _ => self.err("non-negative budget"),
        }
    }

    // FILL table.column [WHERE col = lit] [BUDGET n]
    fn fill(&mut self) -> crate::Result<FillStmt> {
        self.expect_kw(Keyword::Fill)?;
        let table = self.ident()?;
        self.expect_tok(Token::Dot)?;
        let column = self.ident()?;
        let filter = self.opt_filter()?;
        let budget = self.budget()?;
        Ok(FillStmt { table, column, filter, budget })
    }

    // COLLECT cols [WHERE col = lit] [BUDGET n]
    fn collect(&mut self) -> crate::Result<CollectStmt> {
        self.expect_kw(Keyword::Collect)?;
        let mut columns = vec![self.projection_item()?];
        while self.eat_if(&Token::Comma) {
            columns.push(self.projection_item()?);
        }
        let filter = self.opt_filter()?;
        let budget = self.budget()?;
        Ok(CollectStmt { columns, filter, budget })
    }

    fn opt_filter(&mut self) -> crate::Result<Option<(ColumnRef, Literal)>> {
        if !self.eat_kw(Keyword::Where) {
            return Ok(None);
        }
        let col = self.column_ref()?;
        self.expect_tok(Token::Eq)?;
        let lit = self.literal()?;
        Ok(Some((col, lit)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_query_3j() {
        let stmt = parse(
            "SELECT * FROM Paper, Researcher, Citation, University \
             WHERE Paper.Author CROWDJOIN Researcher.Name AND \
             Paper.Title CROWDJOIN Citation.Title AND \
             Researcher.Affiliation CROWDJOIN University.Name",
        )
        .unwrap();
        let Statement::Select(q) = stmt else { panic!("expected select") };
        assert_eq!(q.tables, vec!["Paper", "Researcher", "Citation", "University"]);
        assert_eq!(q.predicates.len(), 3);
        assert!(q.predicates.iter().all(Predicate::is_crowd));
        assert_eq!(q.budget, None);
    }

    #[test]
    fn parse_select_with_crowdequal_and_budget() {
        let stmt = parse(
            "SELECT Paper.title, Citation.number FROM Paper, Citation \
             WHERE Paper.title CROWDJOIN Citation.title AND \
             Paper.conference CROWDEQUAL \"sigmod\" BUDGET 600;",
        )
        .unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        assert_eq!(q.budget, Some(600));
        assert!(matches!(
            &q.predicates[1],
            Predicate::CrowdEqual { value: Literal::Str(s), .. } if s == "sigmod"
        ));
        let Projection::Columns(cols) = &q.projection else { panic!() };
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn parse_traditional_predicates() {
        let stmt = parse("SELECT * FROM A, B WHERE A.x = B.y AND A.z = \"v\" AND A.n = 5").unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        assert!(matches!(q.predicates[0], Predicate::EquiJoin { .. }));
        assert!(matches!(q.predicates[1], Predicate::Equal { value: Literal::Str(_), .. }));
        assert!(matches!(q.predicates[2], Predicate::Equal { value: Literal::Int(5), .. }));
    }

    #[test]
    fn parse_create_table_with_crowd_columns() {
        let stmt = parse(
            "CREATE TABLE Researcher (name varchar(64), \
             gender CROWD varchar(16), affiliation CROWD varchar(64))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else { panic!() };
        assert_eq!(ct.name, "Researcher");
        assert!(!ct.crowd);
        assert_eq!(ct.columns.len(), 3);
        assert!(!ct.columns[0].crowd);
        assert!(ct.columns[1].crowd);
        assert_eq!(ct.columns[0].ty, TypeName::Varchar(64));
    }

    #[test]
    fn parse_create_crowd_table() {
        let stmt = parse(
            "CREATE CROWD TABLE University (name varchar(64), city varchar(64), country varchar(64));",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else { panic!() };
        assert!(ct.crowd);
        assert_eq!(ct.columns.len(), 3);
    }

    #[test]
    fn parse_fill_with_filter() {
        let stmt = parse("FILL Researcher.affiliation WHERE Researcher.gender = 'female'").unwrap();
        let Statement::Fill(f) = stmt else { panic!() };
        assert_eq!(f.table, "Researcher");
        assert_eq!(f.column, "affiliation");
        assert!(f.filter.is_some());
    }

    #[test]
    fn parse_fill_bare() {
        let stmt = parse("FILL Researcher.gender BUDGET 100").unwrap();
        let Statement::Fill(f) = stmt else { panic!() };
        assert_eq!(f.budget, Some(100));
        assert!(f.filter.is_none());
    }

    #[test]
    fn parse_collect() {
        let stmt = parse(
            "COLLECT University.name, University.city WHERE University.country = \"US\" BUDGET 100",
        )
        .unwrap();
        let Statement::Collect(c) = stmt else { panic!() };
        assert_eq!(c.columns.len(), 2);
        assert_eq!(c.budget, Some(100));
        let (col, lit) = c.filter.unwrap();
        assert_eq!(col.to_string(), "University.country");
        assert_eq!(lit, Literal::Str("US".into()));
    }

    #[test]
    fn parse_table_star_projection() {
        let stmt = parse("SELECT University.* FROM University").unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        let Projection::Columns(cols) = &q.projection else { panic!() };
        assert_eq!(cols[0], ColumnRef::qualified("University", "*"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM A x y z ,").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn negative_budget_rejected() {
        assert!(parse("SELECT * FROM A BUDGET -5").is_err());
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse("SELECT *").is_err());
    }

    #[test]
    fn error_messages_name_expectation() {
        let err = parse("SELECT * FROM").unwrap_err();
        assert!(err.to_string().contains("identifier"), "{err}");
    }
}
