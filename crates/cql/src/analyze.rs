//! Semantic analysis: bind a parsed `SELECT` to a catalog.

use cdb_storage::Database;

use crate::ast::{ColumnRef, Literal, Predicate, Projection, SelectQuery};
use crate::CqlError;

/// A column reference resolved against the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoundColumn {
    /// Resolved table name (as registered in the catalog).
    pub table: String,
    /// Resolved column name.
    pub column: String,
}

impl std::fmt::Display for BoundColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// A predicate with both sides resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzedPredicate {
    /// Crowd-powered join.
    CrowdJoin {
        /// Left side.
        left: BoundColumn,
        /// Right side.
        right: BoundColumn,
    },
    /// Traditional equi-join.
    EquiJoin {
        /// Left side.
        left: BoundColumn,
        /// Right side.
        right: BoundColumn,
    },
    /// Crowd-powered selection.
    CrowdEqual {
        /// Selected column.
        column: BoundColumn,
        /// Comparison value.
        value: Literal,
    },
    /// Traditional selection.
    Equal {
        /// Selected column.
        column: BoundColumn,
        /// Comparison value.
        value: Literal,
    },
}

impl AnalyzedPredicate {
    /// True for crowd-powered predicates.
    pub fn is_crowd(&self) -> bool {
        matches!(self, AnalyzedPredicate::CrowdJoin { .. } | AnalyzedPredicate::CrowdEqual { .. })
    }
}

/// A resolved crowd post-op (`GROUP BY CROWD` / `ORDER BY CROWD`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzedPostOp {
    /// The resolved key column.
    pub column: BoundColumn,
    /// Descending order (ORDER BY only).
    pub descending: bool,
}

/// A fully analyzed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedSelect {
    /// Tables in `FROM` order, resolved to catalog names.
    pub tables: Vec<String>,
    /// Projected columns (star projections expanded).
    pub projection: Vec<BoundColumn>,
    /// Resolved predicates.
    pub predicates: Vec<AnalyzedPredicate>,
    /// `GROUP BY CROWD`, resolved.
    pub group_by: Option<AnalyzedPostOp>,
    /// `ORDER BY CROWD`, resolved.
    pub order_by: Option<AnalyzedPostOp>,
    /// Task budget, if declared.
    pub budget: Option<usize>,
}

/// Resolve tables, expand projections and bind every predicate of a parsed
/// `SELECT` against the catalog.
pub fn analyze_select(query: &SelectQuery, db: &Database) -> crate::Result<AnalyzedSelect> {
    // Resolve tables.
    let mut tables = Vec::with_capacity(query.tables.len());
    for t in &query.tables {
        let table = db.table(t).map_err(|_| CqlError::Semantic(format!("unknown table `{t}`")))?;
        if tables.contains(&table.name().to_string()) {
            return Err(CqlError::Semantic(format!("table `{t}` listed twice in FROM")));
        }
        tables.push(table.name().to_string());
    }

    let resolve = |cref: &ColumnRef| -> crate::Result<BoundColumn> {
        match &cref.table {
            Some(t) => {
                let table = tables
                    .iter()
                    .find(|name| name.eq_ignore_ascii_case(t))
                    .ok_or_else(|| CqlError::Semantic(format!("table `{t}` not in FROM clause")))?;
                let schema = db.table(table).expect("resolved above").schema();
                let col = schema.column(&cref.column).ok_or_else(|| {
                    CqlError::Semantic(format!("unknown column `{}` in `{t}`", cref.column))
                })?;
                Ok(BoundColumn { table: table.clone(), column: col.name.clone() })
            }
            None => {
                // Unqualified: must be unique across FROM tables.
                let mut hits = Vec::new();
                for table in &tables {
                    let schema = db.table(table).expect("resolved above").schema();
                    if let Some(col) = schema.column(&cref.column) {
                        hits.push(BoundColumn { table: table.clone(), column: col.name.clone() });
                    }
                }
                match hits.len() {
                    0 => Err(CqlError::Semantic(format!("unknown column `{}`", cref.column))),
                    1 => Ok(hits.pop().expect("len checked")),
                    _ => Err(CqlError::Semantic(format!(
                        "ambiguous column `{}` (in {})",
                        cref.column,
                        hits.iter().map(|h| h.table.as_str()).collect::<Vec<_>>().join(", ")
                    ))),
                }
            }
        }
    };

    // Expand projection.
    let mut projection = Vec::new();
    match &query.projection {
        Projection::Star => {
            for t in &tables {
                for col in db.table(t).expect("resolved above").schema().columns() {
                    projection.push(BoundColumn { table: t.clone(), column: col.name.clone() });
                }
            }
        }
        Projection::Columns(cols) => {
            for cref in cols {
                if cref.column == "*" {
                    let t = cref.table.as_deref().expect("parser only makes Table.*");
                    let table =
                        tables.iter().find(|name| name.eq_ignore_ascii_case(t)).ok_or_else(
                            || CqlError::Semantic(format!("table `{t}` not in FROM clause")),
                        )?;
                    for col in db.table(table).expect("resolved above").schema().columns() {
                        projection
                            .push(BoundColumn { table: table.clone(), column: col.name.clone() });
                    }
                } else {
                    projection.push(resolve(cref)?);
                }
            }
        }
    }

    // Bind predicates.
    let mut predicates = Vec::with_capacity(query.predicates.len());
    for p in &query.predicates {
        let bound = match p {
            Predicate::CrowdJoin { left, right } => {
                let (l, r) = (resolve(left)?, resolve(right)?);
                if l.table == r.table {
                    return Err(CqlError::Semantic(format!(
                        "CROWDJOIN requires two different tables, got `{l}` and `{r}`"
                    )));
                }
                AnalyzedPredicate::CrowdJoin { left: l, right: r }
            }
            Predicate::EquiJoin { left, right } => {
                let (l, r) = (resolve(left)?, resolve(right)?);
                if l.table == r.table {
                    return Err(CqlError::Semantic(format!(
                        "join requires two different tables, got `{l}` and `{r}`"
                    )));
                }
                AnalyzedPredicate::EquiJoin { left: l, right: r }
            }
            Predicate::CrowdEqual { column, value } => {
                AnalyzedPredicate::CrowdEqual { column: resolve(column)?, value: value.clone() }
            }
            Predicate::Equal { column, value } => {
                AnalyzedPredicate::Equal { column: resolve(column)?, value: value.clone() }
            }
        };
        predicates.push(bound);
    }

    let group_by = query
        .group_by
        .as_ref()
        .map(|op| {
            Ok::<_, CqlError>(AnalyzedPostOp {
                column: resolve(&op.column)?,
                descending: op.descending,
            })
        })
        .transpose()?;
    let order_by = query
        .order_by
        .as_ref()
        .map(|op| {
            Ok::<_, CqlError>(AnalyzedPostOp {
                column: resolve(&op.column)?,
                descending: op.descending,
            })
        })
        .transpose()?;

    Ok(AnalyzedSelect { tables, projection, predicates, group_by, order_by, budget: query.budget })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::Statement;
    use cdb_storage::{ColumnDef, ColumnType, Schema, Table};

    fn catalog() -> Database {
        let mut db = Database::new();
        let paper = Table::new(
            "Paper",
            Schema::new(vec![
                ColumnDef::new("author", ColumnType::Text),
                ColumnDef::new("title", ColumnType::Text),
                ColumnDef::new("conference", ColumnType::Text),
            ]),
        );
        let citation = Table::new(
            "Citation",
            Schema::new(vec![
                ColumnDef::new("title", ColumnType::Text),
                ColumnDef::new("number", ColumnType::Int),
            ]),
        );
        db.add_table(paper).unwrap();
        db.add_table(citation).unwrap();
        db
    }

    fn analyze(sql: &str) -> crate::Result<AnalyzedSelect> {
        let Statement::Select(q) = parse(sql).unwrap() else { panic!("not a select") };
        analyze_select(&q, &catalog())
    }

    #[test]
    fn star_projection_expands_all_tables() {
        let a = analyze("SELECT * FROM Paper, Citation").unwrap();
        assert_eq!(a.projection.len(), 5);
        assert_eq!(a.projection[0].to_string(), "Paper.author");
        assert_eq!(a.projection[4].to_string(), "Citation.number");
    }

    #[test]
    fn qualified_columns_resolve() {
        let a = analyze(
            "SELECT Paper.title FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title",
        )
        .unwrap();
        assert_eq!(a.projection.len(), 1);
        assert!(matches!(&a.predicates[0], AnalyzedPredicate::CrowdJoin { .. }));
    }

    #[test]
    fn unqualified_unique_column_resolves() {
        let a = analyze("SELECT number FROM Paper, Citation").unwrap();
        assert_eq!(a.projection[0].to_string(), "Citation.number");
    }

    #[test]
    fn ambiguous_column_rejected() {
        let err = analyze("SELECT title FROM Paper, Citation").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn unknown_table_rejected() {
        let err = analyze("SELECT * FROM Nope").unwrap_err();
        assert!(err.to_string().contains("unknown table"), "{err}");
    }

    #[test]
    fn unknown_column_rejected() {
        let err = analyze("SELECT Paper.nope FROM Paper").unwrap_err();
        assert!(err.to_string().contains("unknown column"), "{err}");
    }

    #[test]
    fn table_not_in_from_rejected() {
        let err = analyze("SELECT Citation.title FROM Paper").unwrap_err();
        assert!(err.to_string().contains("not in FROM"), "{err}");
    }

    #[test]
    fn self_join_rejected() {
        let err =
            analyze("SELECT * FROM Paper WHERE Paper.title CROWDJOIN Paper.author").unwrap_err();
        assert!(err.to_string().contains("two different tables"), "{err}");
    }

    #[test]
    fn duplicate_from_table_rejected() {
        let err = analyze("SELECT * FROM Paper, Paper").unwrap_err();
        assert!(err.to_string().contains("listed twice"), "{err}");
    }

    #[test]
    fn table_star_expansion() {
        let a = analyze("SELECT Citation.* FROM Paper, Citation").unwrap();
        assert_eq!(a.projection.len(), 2);
    }

    #[test]
    fn budget_is_carried_through() {
        let a = analyze("SELECT * FROM Paper BUDGET 42").unwrap();
        assert_eq!(a.budget, Some(42));
    }
}
