//! CQL abstract syntax tree.

use serde::{Deserialize, Serialize};

/// A parsed CQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE [CROWD] TABLE …`
    CreateTable(CreateTable),
    /// `SELECT … FROM … [WHERE …] [BUDGET n]`
    Select(SelectQuery),
    /// `FILL table.column [WHERE …] [BUDGET n]`
    Fill(FillStmt),
    /// `COLLECT cols [WHERE …] [BUDGET n]`
    Collect(CollectStmt),
}

/// Column type as written in DDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeName {
    /// `varchar(n)`; the length is advisory only.
    Varchar(u32),
    /// `int`.
    Int,
    /// `float`.
    Float,
}

/// One column in a `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// True when declared `CROWD` (fillable).
    pub crowd: bool,
}

/// `CREATE [CROWD] TABLE name (columns…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// True for `CREATE CROWD TABLE` (rows crowd-collected).
    pub crowd: bool,
    /// Column specifications.
    pub columns: Vec<ColumnSpec>,
}

/// A possibly table-qualified column reference `Table.column` or `column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Qualifying table, when written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef { table: None, column: column.into() }
    }

    /// Table-qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A literal in a predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
        }
    }
}

/// One `WHERE` conjunct.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `a CROWDJOIN b` — crowd-powered join.
    CrowdJoin {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
    },
    /// `a = b` between two columns — traditional equi-join.
    EquiJoin {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
    },
    /// `a CROWDEQUAL literal` — crowd-powered selection.
    CrowdEqual {
        /// Selected column.
        column: ColumnRef,
        /// Comparison value.
        value: Literal,
    },
    /// `a = literal` — traditional selection.
    Equal {
        /// Selected column.
        column: ColumnRef,
        /// Comparison value.
        value: Literal,
    },
}

impl Predicate {
    /// True for crowd-powered predicates (CROWDJOIN / CROWDEQUAL).
    pub fn is_crowd(&self) -> bool {
        matches!(self, Predicate::CrowdJoin { .. } | Predicate::CrowdEqual { .. })
    }

    /// True for join predicates (crowd or traditional).
    pub fn is_join(&self) -> bool {
        matches!(self, Predicate::CrowdJoin { .. } | Predicate::EquiJoin { .. })
    }
}

/// `SELECT` projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit column list; `Table.*` is expanded during analysis.
    Columns(Vec<ColumnRef>),
}

/// Crowd-powered post-processing of the result set (the §4.2 Remark):
/// `GROUP BY CROWD col` clusters results by crowd-judged key equality;
/// `ORDER BY CROWD col [DESC|ASC]` ranks them with pairwise comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrowdPostOp {
    /// The key column.
    pub column: ColumnRef,
    /// For ORDER BY: descending (default) or ascending.
    pub descending: bool,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// What to project.
    pub projection: Projection,
    /// `FROM` tables in order.
    pub tables: Vec<String>,
    /// `WHERE` conjuncts.
    pub predicates: Vec<Predicate>,
    /// Optional `GROUP BY CROWD col`.
    pub group_by: Option<CrowdPostOp>,
    /// Optional `ORDER BY CROWD col [DESC|ASC]`.
    pub order_by: Option<CrowdPostOp>,
    /// Optional `BUDGET n` (maximum number of crowd tasks).
    pub budget: Option<usize>,
}

/// `FILL table.column [WHERE column = literal] [BUDGET n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FillStmt {
    /// Target table.
    pub table: String,
    /// Column whose CNULL cells the crowd fills.
    pub column: String,
    /// Optional filter restricting which rows are filled.
    pub filter: Option<(ColumnRef, Literal)>,
    /// Optional task budget.
    pub budget: Option<usize>,
}

/// `COLLECT cols [WHERE column = literal] [BUDGET n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectStmt {
    /// Columns to collect; all must come from one crowd table.
    pub columns: Vec<ColumnRef>,
    /// Optional constraint the collected tuples must satisfy.
    pub filter: Option<(ColumnRef, Literal)>,
    /// Optional task budget.
    pub budget: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::qualified("Paper", "title").to_string(), "Paper.title");
        assert_eq!(ColumnRef::bare("title").to_string(), "title");
    }

    #[test]
    fn predicate_classification() {
        let cj = Predicate::CrowdJoin { left: ColumnRef::bare("a"), right: ColumnRef::bare("b") };
        assert!(cj.is_crowd());
        assert!(cj.is_join());
        let eq = Predicate::Equal { column: ColumnRef::bare("a"), value: Literal::Str("x".into()) };
        assert!(!eq.is_crowd());
        assert!(!eq.is_join());
        let ce =
            Predicate::CrowdEqual { column: ColumnRef::bare("a"), value: Literal::Str("x".into()) };
        assert!(ce.is_crowd());
        assert!(!ce.is_join());
    }

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Str("USA".into()).to_string(), "\"USA\"");
        assert_eq!(Literal::Int(5).to_string(), "5");
    }
}
