//! CQL error type.

use std::fmt;

/// Errors produced while lexing, parsing or analyzing CQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqlError {
    /// Unexpected character during lexing.
    Lex {
        /// Byte offset of the offending character.
        pos: usize,
        /// The character.
        ch: char,
    },
    /// Unterminated string literal.
    UnterminatedString {
        /// Byte offset where the literal started.
        pos: usize,
    },
    /// Parser expected something else.
    Parse {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// Semantic error (unknown table/column, ambiguous reference, …).
    Semantic(String),
}

impl fmt::Display for CqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqlError::Lex { pos, ch } => write!(f, "unexpected character `{ch}` at byte {pos}"),
            CqlError::UnterminatedString { pos } => {
                write!(f, "unterminated string literal starting at byte {pos}")
            }
            CqlError::Parse { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            CqlError::Semantic(msg) => write!(f, "semantic error: {msg}"),
        }
    }
}

impl std::error::Error for CqlError {}
