//! CQL lexer.

use crate::CqlError;

/// CQL keywords (matched case-insensitively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    CrowdJoin,
    CrowdEqual,
    Create,
    Table,
    Crowd,
    Fill,
    Collect,
    Budget,
    Varchar,
    Int,
    Float,
    CNull,
    Group,
    Order,
    By,
    Desc,
    Asc,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "CROWDJOIN" => Keyword::CrowdJoin,
            "CROWDEQUAL" => Keyword::CrowdEqual,
            "CREATE" => Keyword::Create,
            "TABLE" => Keyword::Table,
            "CROWD" => Keyword::Crowd,
            "FILL" => Keyword::Fill,
            "COLLECT" => Keyword::Collect,
            "BUDGET" => Keyword::Budget,
            "VARCHAR" => Keyword::Varchar,
            "INT" | "INTEGER" => Keyword::Int,
            "FLOAT" | "DOUBLE" => Keyword::Float,
            "CNULL" => Keyword::CNull,
            "GROUP" => Keyword::Group,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "DESC" => Keyword::Desc,
            "ASC" => Keyword::Asc,
            _ => return None,
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword.
    Kw(Keyword),
    /// Identifier (table or column name).
    Ident(String),
    /// Quoted string literal (quotes stripped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `;`
    Semi,
}

/// Tokenize a CQL string.
pub fn tokenize(input: &str) -> crate::Result<Vec<Token>> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '"' | '\'' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(CqlError::UnterminatedString { pos: start }),
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while matches!(bytes.get(i), Some(d) if d.is_ascii_digit()) {
                    i += 1;
                }
                let mut is_float = false;
                if matches!(bytes.get(i), Some('.'))
                    && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while matches!(bytes.get(i), Some(d) if d.is_ascii_digit()) {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().expect("lexer produced valid float")));
                } else {
                    // A digit run can still overflow the integer type.
                    let n = text.parse().map_err(|_| CqlError::Parse {
                        expected: "integer literal in range".into(),
                        found: format!("`{text}` at byte {start}"),
                    })?;
                    out.push(Token::Int(n));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while matches!(bytes.get(i), Some(&ch) if ch.is_alphanumeric() || ch == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                match Keyword::from_ident(&word) {
                    Some(kw) => out.push(Token::Kw(kw)),
                    None => out.push(Token::Ident(word)),
                }
            }
            other => return Err(CqlError::Lex { pos: i, ch: other }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let t = tokenize("select FROM CrowdJoin crowdequal").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Kw(Keyword::Select),
                Token::Kw(Keyword::From),
                Token::Kw(Keyword::CrowdJoin),
                Token::Kw(Keyword::CrowdEqual),
            ]
        );
    }

    #[test]
    fn identifiers_and_dots() {
        let t = tokenize("Paper.title").unwrap();
        assert_eq!(t, vec![Token::Ident("Paper".into()), Token::Dot, Token::Ident("title".into())]);
    }

    #[test]
    fn string_literals_both_quote_styles() {
        assert_eq!(tokenize("\"USA\"").unwrap(), vec![Token::Str("USA".into())]);
        assert_eq!(tokenize("'USA'").unwrap(), vec![Token::Str("USA".into())]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(tokenize("\"USA"), Err(CqlError::UnterminatedString { .. })));
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize("-7").unwrap(), vec![Token::Int(-7)]);
        assert_eq!(tokenize("3.5").unwrap(), vec![Token::Float(3.5)]);
    }

    #[test]
    fn punctuation() {
        let t = tokenize("(*, = ;)").unwrap();
        assert_eq!(
            t,
            vec![Token::LParen, Token::Star, Token::Comma, Token::Eq, Token::Semi, Token::RParen]
        );
    }

    #[test]
    fn unexpected_character() {
        assert!(matches!(tokenize("a @ b"), Err(CqlError::Lex { ch: '@', .. })));
    }

    #[test]
    fn varchar_size_tokens() {
        let t = tokenize("varchar(64)").unwrap();
        assert_eq!(
            t,
            vec![Token::Kw(Keyword::Varchar), Token::LParen, Token::Int(64), Token::RParen]
        );
    }
}
