//! Fuzz-style parser robustness: 1000 seeded mutations of valid CQL must
//! never panic the lexer or parser — every outcome is `Ok` or a proper
//! `CqlError`. Mutations are byte-level (flip, delete, duplicate, insert,
//! truncate, splice), so most outputs are garbage; the property under
//! test is "no panic", not "rejects garbage".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every statement family the grammar knows, as mutation corpus.
const CORPUS: &[&str] = &[
    "SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title",
    "SELECT Paper.title, number FROM Paper, Citation \
     WHERE Paper.title CROWDJOIN Citation.title AND Paper.author CROWDEQUAL 'Alice' \
     BUDGET 500",
    "SELECT * FROM Paper, Citation, Researcher, University \
     WHERE Paper.title CROWDJOIN Citation.title AND \
     Paper.author CROWDJOIN Researcher.name AND \
     University.name CROWDJOIN Researcher.affiliation",
    "SELECT * FROM Paper WHERE conference = 'SIGMOD' GROUP BY CROWD conference",
    "SELECT * FROM Paper ORDER BY CROWD title DESC BUDGET 10",
    "CREATE TABLE Paper(author varchar(64), title CROWD varchar(64), year INT)",
    "CREATE CROWD TABLE University(name varchar(64))",
    "FILL Paper.conference WHERE Paper.year = 2017",
    "COLLECT University.name, University.city WHERE University.country = 'China' BUDGET 100",
];

/// One random byte-level edit. Operates on bytes on purpose: invalid
/// UTF-8 boundaries are repaired lossily, which is itself an input class
/// the parser must survive.
fn mutate(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    if bytes.is_empty() {
        bytes.push(rng.gen());
        return;
    }
    let i = rng.gen_range(0..bytes.len());
    match rng.gen_range(0..6) {
        0 => bytes[i] = rng.gen(), // flip
        1 => {
            let b = bytes.remove(i); // delete
            let _ = b;
        }
        2 => {
            let b = bytes[i]; // duplicate
            bytes.insert(i, b);
        }
        3 => {
            // Insert a token-ish fragment: grammar keywords and fences
            // reach deeper parser states than random bytes.
            const FRAGMENTS: &[&str] =
                &["CROWDJOIN", "SELECT", "WHERE", "'", ".", ",", "(", "BUDGET", "*", "CROWD"];
            let frag = FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())];
            for (k, b) in frag.bytes().enumerate() {
                bytes.insert(i + k, b);
            }
        }
        4 => bytes.truncate(i), // truncate
        _ => {
            // Splice: replace the tail with the tail of another corpus entry.
            let other = CORPUS[rng.gen_range(0..CORPUS.len())].as_bytes();
            let j = rng.gen_range(0..=other.len());
            bytes.truncate(i);
            bytes.extend_from_slice(&other[j.min(other.len())..]);
        }
    }
}

#[test]
fn thousand_seeded_mutations_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xF022);
    for case in 0..1000 {
        let base = CORPUS[case % CORPUS.len()];
        let mut bytes = base.as_bytes().to_vec();
        for _ in 0..rng.gen_range(1..=8) {
            mutate(&mut bytes, &mut rng);
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // The property: parse returns, it never panics. Result ignored.
        let _ = cdb_cql::parse(&text);
        let _ = cdb_cql::tokenize(&text);
    }
}

#[test]
fn corpus_itself_parses() {
    for sql in CORPUS {
        cdb_cql::parse(sql).unwrap_or_else(|e| panic!("corpus entry failed: {sql}: {e}"));
    }
}

#[test]
fn pathological_inputs_do_not_panic() {
    let deep_parens =
        format!("SELECT * FROM T WHERE a = {}'x'{}", "(".repeat(500), ")".repeat(500));
    for text in [
        "",
        " ",
        "'",
        "''",
        "'unterminated",
        "SELECT",
        "SELECT * FROM",
        "BUDGET BUDGET BUDGET",
        "\u{0}\u{ffff}\u{10FFFF}",
        "SELECT * FROM T BUDGET 99999999999999999999999999",
        deep_parens.as_str(),
    ] {
        let _ = cdb_cql::parse(text);
    }
}
