//! The doc-drift gate for `docs/CQL.md`: every fenced ```cql block in
//! the language reference is extracted and fed through the real parser.
//! A doc example the parser rejects — or a grammar change that breaks a
//! documented example — fails this test, so the reference cannot drift
//! from the implementation. (The worked examples are additionally
//! *executed* by the umbrella crate's `tests/docs_runnable.rs`.)

use cdb_cql::{parse, Statement};

/// Every statement inside every ```cql fence, in document order.
/// Blocks may hold several `;`-terminated statements.
fn doc_statements() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/CQL.md");
    let doc = std::fs::read_to_string(path).expect("docs/CQL.md is readable");
    let mut stmts = Vec::new();
    let mut in_cql = false;
    let mut block = String::new();
    for line in doc.lines() {
        let fence = line.trim_start();
        if let Some(info) = fence.strip_prefix("```") {
            if in_cql {
                for stmt in block.split(';') {
                    if !stmt.trim().is_empty() {
                        stmts.push(stmt.trim().to_string());
                    }
                }
                block.clear();
                in_cql = false;
            } else {
                in_cql = info.trim() == "cql";
            }
            continue;
        }
        if in_cql {
            block.push_str(line);
            block.push('\n');
        }
    }
    assert!(!in_cql, "unterminated ```cql fence in docs/CQL.md");
    stmts
}

#[test]
fn every_cql_block_in_the_reference_parses() {
    let stmts = doc_statements();
    assert!(
        stmts.len() >= 10,
        "docs/CQL.md should document at least 10 example statements, found {}",
        stmts.len()
    );
    for stmt in &stmts {
        parse(stmt).unwrap_or_else(|e| panic!("doc example fails to parse: {e}\n---\n{stmt}"));
    }
}

#[test]
fn the_reference_covers_every_statement_kind() {
    let mut create = 0;
    let mut create_crowd = 0;
    let mut select = 0;
    let mut fill = 0;
    let mut collect = 0;
    let mut group_by = 0;
    let mut order_by = 0;
    let mut budget = 0;
    let mut crowd_sel = 0;
    for stmt in doc_statements() {
        match parse(&stmt).expect("covered by every_cql_block_in_the_reference_parses") {
            Statement::CreateTable(ct) => {
                create += 1;
                create_crowd += usize::from(ct.crowd);
            }
            Statement::Select(q) => {
                select += 1;
                group_by += usize::from(q.group_by.is_some());
                order_by += usize::from(q.order_by.is_some());
                budget += usize::from(q.budget.is_some());
                crowd_sel += usize::from(q.predicates.iter().any(|p| p.is_crowd() && !p.is_join()));
            }
            Statement::Fill(f) => {
                fill += 1;
                budget += usize::from(f.budget.is_some());
            }
            Statement::Collect(c) => {
                collect += 1;
                budget += usize::from(c.budget.is_some());
            }
        }
    }
    assert!(create >= 2, "CREATE TABLE examples: {create}");
    assert!(create_crowd >= 1, "CREATE CROWD TABLE examples: {create_crowd}");
    assert!(select >= 4, "SELECT examples: {select}");
    assert!(fill >= 2, "FILL examples: {fill}");
    assert!(collect >= 1, "COLLECT examples: {collect}");
    assert!(group_by >= 1, "GROUP BY CROWD examples: {group_by}");
    assert!(order_by >= 1, "ORDER BY CROWD examples: {order_by}");
    assert!(budget >= 3, "BUDGET examples: {budget}");
    assert!(crowd_sel >= 1, "CROWDEQUAL examples: {crowd_sel}");
}
