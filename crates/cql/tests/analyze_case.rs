//! Golden tests for case-insensitive table/column resolution in
//! `analyze_select`: however the query spells a name, the analyzer must
//! bind it and report it back in the catalog's canonical spelling.

use cdb_cql::{analyze_select, AnalyzedPredicate, AnalyzedSelect, Statement};
use cdb_storage::{ColumnDef, ColumnType, Database, Schema, Table};

fn catalog() -> Database {
    let mut db = Database::new();
    db.add_table(Table::new(
        "Paper",
        Schema::new(vec![
            ColumnDef::new("Author", ColumnType::Text),
            ColumnDef::new("Title", ColumnType::Text),
        ]),
    ))
    .unwrap();
    db.add_table(Table::new(
        "Citation",
        Schema::new(vec![
            ColumnDef::new("title", ColumnType::Text),
            ColumnDef::new("number", ColumnType::Int),
        ]),
    ))
    .unwrap();
    db
}

fn analyze(sql: &str) -> cdb_cql::Result<AnalyzedSelect> {
    let Statement::Select(q) = cdb_cql::parse(sql).expect("parses") else {
        panic!("not a select: {sql}")
    };
    analyze_select(&q, &catalog())
}

/// FROM tables in any case resolve to the catalog's canonical names.
#[test]
fn from_tables_resolve_case_insensitively() {
    for sql in [
        "SELECT * FROM paper, citation",
        "SELECT * FROM PAPER, CITATION",
        "SELECT * FROM pApEr, CiTaTiOn",
    ] {
        let a = analyze(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(a.tables, vec!["Paper", "Citation"], "{sql}");
    }
}

/// Qualified refs mix table and column case freely; the binding reports
/// canonical spellings of both.
#[test]
fn qualified_columns_resolve_case_insensitively() {
    let a = analyze(
        "SELECT PAPER.title FROM paper, Citation WHERE paper.TITLE CROWDJOIN citation.Title",
    )
    .unwrap();
    assert_eq!(a.projection[0].to_string(), "Paper.Title");
    let AnalyzedPredicate::CrowdJoin { left, right } = &a.predicates[0] else {
        panic!("expected CrowdJoin")
    };
    assert_eq!(left.to_string(), "Paper.Title");
    assert_eq!(right.to_string(), "Citation.title");
}

/// An unqualified ref that is unique only case-insensitively still binds.
#[test]
fn unqualified_column_resolves_case_insensitively() {
    let a = analyze("SELECT NUMBER FROM Paper, Citation").unwrap();
    assert_eq!(a.projection[0].to_string(), "Citation.number");
    let a = analyze("SELECT author FROM Paper, Citation").unwrap();
    assert_eq!(a.projection[0].to_string(), "Paper.Author");
}

/// Ambiguity is detected across cases: `Paper.Title` and `Citation.title`
/// both match an unqualified `TITLE`.
#[test]
fn ambiguity_is_case_insensitive_too() {
    let err = analyze("SELECT TITLE FROM Paper, Citation").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("ambiguous"), "{msg}");
    assert!(msg.contains("Paper") && msg.contains("Citation"), "{msg}");
}

/// `Table.*` expansion accepts any case and expands the canonical table.
#[test]
fn table_star_is_case_insensitive() {
    let a = analyze("SELECT CITATION.* FROM Paper, citation").unwrap();
    assert_eq!(a.projection.len(), 2);
    assert_eq!(a.projection[0].to_string(), "Citation.title");
}

/// Duplicate FROM entries are duplicates even when spelled differently.
#[test]
fn duplicate_from_detected_across_cases() {
    let err = analyze("SELECT * FROM Paper, PAPER").unwrap_err();
    assert!(err.to_string().contains("listed twice"), "{err}");
}

/// A self join is rejected even when the two sides spell the table
/// differently.
#[test]
fn self_join_detected_across_cases() {
    let err = analyze("SELECT * FROM Paper WHERE PAPER.author CROWDJOIN paper.title").unwrap_err();
    assert!(err.to_string().contains("two different tables"), "{err}");
}

/// GROUP BY / ORDER BY key columns resolve case-insensitively.
#[test]
fn post_op_keys_resolve_case_insensitively() {
    let a = analyze("SELECT * FROM Paper GROUP BY CROWD AUTHOR").unwrap();
    assert_eq!(a.group_by.unwrap().column.to_string(), "Paper.Author");
    let a = analyze("SELECT * FROM Paper ORDER BY CROWD title DESC").unwrap();
    let ob = a.order_by.unwrap();
    assert_eq!(ob.column.to_string(), "Paper.Title");
    assert!(ob.descending);
}

/// Misses stay misses in every case: wrong names are not rescued.
#[test]
fn unknown_names_still_rejected() {
    assert!(analyze("SELECT * FROM papers").is_err(), "near-miss table must not resolve");
    assert!(analyze("SELECT Paper.titles FROM Paper").is_err(), "near-miss column");
    assert!(analyze("SELECT Citation.Title FROM Paper").is_err(), "table not in FROM");
}
