//! Replay every committed simulation repro file.
//!
//! Each `tests/sim_repros/*.repro` is a self-contained scenario written
//! by the cdb-sim shrinker after it caught an invariant violation. The
//! committed set demonstrates the detector end to end via the harness's
//! test-only `sabotage=` corruptions — a 20,000-iteration clean soak of
//! the production path (`sabotage=none`) found no genuine violations
//! (see DESIGN.md, "Simulation testing").
//!
//! A repro regression-passes when replaying it still reports the
//! invariant recorded in its `violation=` lines. If one of these tests
//! fails, either the invariant checker lost a detection or the runtime's
//! determinism contract changed — both need a look before touching the
//! repro file.

use cdb_sim::{recorded_violations, replay_repro};

fn replay_file(name: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/sim_repros/");
    let text = std::fs::read_to_string(format!("{path}{name}")).expect("repro file readable");
    let recorded = recorded_violations(&text);
    assert!(!recorded.is_empty(), "{name}: repro file records no violation");
    let replayed = replay_repro(&text).expect("repro file parses");
    assert!(
        replayed.iter().any(|v| recorded.contains(&v.invariant)),
        "{name}: replay no longer reproduces {recorded:?}; got {replayed:?}"
    );
}

#[test]
fn flip_binding_repro_replays() {
    replay_file("flip-binding.repro");
}

#[test]
fn flip_entailment_repro_replays() {
    replay_file("flip-entailment.repro");
}

#[test]
fn leak_task_repro_replays() {
    replay_file("leak-task.repro");
}

#[test]
fn leak_cross_shard_repro_replays() {
    replay_file("leak-cross-shard.repro");
}

#[test]
fn starve_query_repro_replays() {
    replay_file("starve-query.repro");
}

/// Every committed repro file is covered by a named test above — a new
/// `.repro` without a matching test is an error, not silence.
#[test]
fn all_committed_repros_are_replayed() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/sim_repros");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("sim_repros dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".repro"))
        .collect();
    found.sort();
    assert_eq!(
        found,
        vec![
            "flip-binding.repro",
            "flip-entailment.repro",
            "leak-cross-shard.repro",
            "leak-task.repro",
            "starve-query.repro",
        ],
        "update tests/sim_repros.rs when adding or removing repro files"
    );
}
