//! Integration: the worker-metadata loop (§2.1). Quality estimates from
//! one query warm-start the next query's inference through
//! `WorkerHistory`, and repeat offenders can be blocklisted.

use cdb::core::executor::{EdgeTruth, Executor, ExecutorConfig, QualityStrategy};
use cdb::core::model::{PartKind, QueryGraph};
use cdb::crowd::{Market, SimulatedPlatform, WorkerHistory, WorkerId, WorkerPool};

/// Single-join bipartite fixture with a truth per edge.
fn fixture(n: usize) -> (QueryGraph, EdgeTruth) {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: "A".into() });
    let b = g.add_part(PartKind::Table { name: "B".into() });
    let an: Vec<_> = (0..n).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<_> = (0..4).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let p = g.add_predicate(a, b, true, "A~B");
    let mut truth = EdgeTruth::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % 4 == j);
        }
    }
    (g, truth)
}

fn pool() -> WorkerPool {
    // 3 experts, 5 mediocre, 2 spammers.
    let mut accs = vec![0.95; 3];
    accs.extend(vec![0.7; 5]);
    accs.extend(vec![0.4; 2]);
    WorkerPool::with_accuracies(&accs)
}

#[test]
fn qualities_flow_into_history_and_back() {
    let (g, truth) = fixture(8);
    let mut history = WorkerHistory::new();

    // Query 1: cold start.
    let mut p = SimulatedPlatform::new(Market::Amt, pool(), 1);
    let stats = Executor::new(
        g.clone(),
        &truth,
        &mut p,
        ExecutorConfig { quality: QualityStrategy::EmBayes, ..Default::default() },
    )
    .run();
    assert!(!stats.worker_qualities.is_empty());
    history.update(&stats.worker_qualities, &stats.worker_answer_counts);
    assert!(!history.is_empty());

    // The spammers (workers 8 and 9) should look worse than the experts.
    let expert_q = history.quality(WorkerId(0));
    let spammer_q = history.quality(WorkerId(8)).min(history.quality(WorkerId(9)));
    assert!(
        expert_q > spammer_q,
        "history should separate expert ({expert_q:.2}) from spammer ({spammer_q:.2})"
    );

    // Query 2: warm start from history.
    let mut p = SimulatedPlatform::new(Market::Amt, pool(), 2);
    let stats2 = Executor::new(
        g.clone(),
        &truth,
        &mut p,
        ExecutorConfig { quality: QualityStrategy::EmBayes, ..Default::default() },
    )
    .with_worker_priors(history.priors())
    .run();
    assert!(!stats2.worker_qualities.is_empty());
}

#[test]
fn majority_voting_reports_no_qualities() {
    let (g, truth) = fixture(6);
    let mut p = SimulatedPlatform::new(Market::Amt, pool(), 3);
    let stats = Executor::new(g, &truth, &mut p, ExecutorConfig::default()).run();
    assert!(stats.worker_qualities.is_empty());
    assert!(!stats.worker_answer_counts.is_empty());
}

#[test]
fn history_blocklist_accumulates_over_queries() {
    let (g, truth) = fixture(10);
    let mut history = WorkerHistory::new();
    for seed in 0..4u64 {
        let mut p = SimulatedPlatform::new(Market::Amt, pool(), seed);
        let stats = Executor::new(
            g.clone(),
            &truth,
            &mut p,
            ExecutorConfig { quality: QualityStrategy::EmBayes, ..Default::default() },
        )
        .with_worker_priors(history.priors())
        .run();
        history.update(&stats.worker_qualities, &stats.worker_answer_counts);
    }
    // Thresholds: EM shrinks estimates toward the 0.7 prior, so spammers
    // (true accuracy 0.4) land around ~0.5–0.6 while experts stay ≥ ~0.8.
    let blocked = history.blocklist(0.62);
    assert!(!blocked.contains(&WorkerId(0)), "expert 0 flagged: {blocked:?}");
    assert!(!blocked.contains(&WorkerId(1)), "expert 1 flagged: {blocked:?}");
    assert!(
        blocked.iter().any(|w| w.0 >= 8),
        "at least one spammer flagged, got {blocked:?} (history: {:?})",
        (0..10).map(|i| (i, history.quality(WorkerId(i)))).collect::<Vec<_>>()
    );
}
