//! Integration tests for the crowd-powered post-operators of the §4.2
//! Remark: `GROUP BY CROWD` and `ORDER BY CROWD` applied to the join
//! results through the `Cdb` façade.

use cdb::core::{Cdb, CdbConfig, QueryTruth};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::storage::{TupleId, Value};

fn setup() -> (Cdb, QueryTruth) {
    let mut cdb = Cdb::new();
    cdb.execute_ddl("CREATE TABLE Paper (title varchar(64), venue varchar(32))").unwrap();
    cdb.execute_ddl("CREATE TABLE Citation (title varchar(64), number int)").unwrap();
    {
        let db = cdb.database_mut();
        let p = db.table_mut("Paper").unwrap();
        p.push(vec![Value::from("Crowdsourced Joins At Scale"), Value::from("SIGMOD")]).unwrap();
        p.push(vec![Value::from("Learned Index Structures"), Value::from("SIGMOD")]).unwrap();
        p.push(vec![Value::from("Quantum Query Planning"), Value::from("VLDB")]).unwrap();
        let c = db.table_mut("Citation").unwrap();
        c.push(vec![Value::from("Crowdsourced Joins At Scale!"), Value::Int(40)]).unwrap();
        c.push(vec![Value::from("Learned Index Structures."), Value::Int(95)]).unwrap();
        c.push(vec![Value::from("Quantum Query Planning [ext]"), Value::Int(12)]).unwrap();
    }
    let mut truth = QueryTruth::default();
    for i in 0..3 {
        truth.add_join(TupleId::new("Paper", i), TupleId::new("Citation", i));
    }
    (cdb, truth)
}

fn platform(seed: u64) -> SimulatedPlatform {
    SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 15]), seed)
}

#[test]
fn order_by_crowd_ranks_answers() {
    let (cdb, truth) = setup();
    let mut p = platform(1);
    let out = cdb
        .run_select(
            "SELECT * FROM Paper, Citation \
             WHERE Paper.title CROWDJOIN Citation.title \
             ORDER BY CROWD Citation.number DESC",
            &truth,
            &mut p,
            &CdbConfig::default(),
        )
        .unwrap();
    assert_eq!(out.stats.answers.len(), 3);
    let order = out.order.as_ref().expect("ORDER BY requested");
    assert_eq!(order.len(), 3);
    assert!(out.post_tasks > 0, "pairwise comparisons cost tasks");
    // The top answer must be the 95-citation paper; read the key back.
    let g = cdb
        .plan_select(
            "SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title",
            &CdbConfig::default().build,
        )
        .unwrap();
    let top = &out.stats.answers[order[0]];
    let citation_row = top
        .binding
        .iter()
        .filter_map(|&n| g.node_tuple(n))
        .find(|t| t.table == "Citation")
        .unwrap()
        .row;
    let num =
        cdb.database().table("Citation").unwrap().cell(citation_row, "number").unwrap().as_int();
    assert_eq!(num, Some(95));
}

#[test]
fn order_by_crowd_asc_reverses() {
    let (cdb, truth) = setup();
    let mut p1 = platform(2);
    let desc = cdb
        .run_select(
            "SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title \
             ORDER BY CROWD Citation.number DESC",
            &truth,
            &mut p1,
            &CdbConfig::default(),
        )
        .unwrap();
    let mut p2 = platform(2);
    let asc = cdb
        .run_select(
            "SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title \
             ORDER BY CROWD Citation.number ASC",
            &truth,
            &mut p2,
            &CdbConfig::default(),
        )
        .unwrap();
    let mut d = desc.order.unwrap();
    d.reverse();
    assert_eq!(d, asc.order.unwrap());
}

#[test]
fn group_by_crowd_clusters_answers() {
    let (cdb, truth) = setup();
    let mut p = platform(3);
    let out = cdb
        .run_select(
            "SELECT * FROM Paper, Citation \
             WHERE Paper.title CROWDJOIN Citation.title \
             GROUP BY CROWD Paper.venue",
            &truth,
            &mut p,
            &CdbConfig::default(),
        )
        .unwrap();
    let groups = out.groups.as_ref().expect("GROUP BY requested");
    // Two SIGMOD answers in one group, the VLDB answer alone.
    assert_eq!(groups.len(), 2);
    let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
    assert!(sizes.contains(&2) && sizes.contains(&1), "{sizes:?}");
}

#[test]
fn no_post_ops_means_none() {
    let (cdb, truth) = setup();
    let mut p = platform(4);
    let out = cdb
        .run_select(
            "SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title",
            &truth,
            &mut p,
            &CdbConfig::default(),
        )
        .unwrap();
    assert!(out.groups.is_none());
    assert!(out.order.is_none());
    assert_eq!(out.post_tasks, 0);
}

#[test]
fn post_op_parse_and_analyze_errors() {
    let (cdb, truth) = setup();
    let mut p = platform(5);
    // Unknown column in ORDER BY.
    let err = cdb
        .run_select(
            "SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title \
             ORDER BY CROWD Citation.nope",
            &truth,
            &mut p,
            &CdbConfig::default(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("unknown column"), "{err}");
}
