//! End-to-end integration: CQL → graph model → optimizer → simulated crowd
//! → answers, across generated datasets and all five benchmark queries.

use cdb::core::{Cdb, CdbConfig, QueryTruth};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::datagen::{award_dataset, paper_dataset, queries_for, DatasetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn platform(quality: f64, seed: u64) -> SimulatedPlatform {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = WorkerPool::gaussian(50, quality, 0.05, &mut rng);
    SimulatedPlatform::new(Market::Amt, pool, seed)
}

#[test]
fn all_five_paper_queries_run_end_to_end() {
    let ds = paper_dataset(DatasetScale::paper_full().scaled(30), 5);
    let cdb = Cdb::with_database(ds.db);
    for q in queries_for("paper") {
        let mut p = platform(0.95, 1);
        let out = cdb
            .run_select(&q.cql, &ds.truth, &mut p, &CdbConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", q.label));
        assert!(out.stats.tasks_asked > 0, "{}", q.label);
        assert!(out.stats.rounds > 0, "{}", q.label);
        // With near-perfect workers the result should be strong whenever
        // answers exist at all.
        if out.true_answer_count > 0 {
            assert!(
                out.metrics.f_measure > 0.6,
                "{}: F = {:?} with {} true answers",
                q.label,
                out.metrics,
                out.true_answer_count
            );
        }
    }
}

#[test]
fn all_five_award_queries_run_end_to_end() {
    let ds = award_dataset(DatasetScale::award_full().scaled(60), 6);
    let cdb = Cdb::with_database(ds.db);
    for q in queries_for("award") {
        let mut p = platform(0.95, 2);
        let out = cdb
            .run_select(&q.cql, &ds.truth, &mut p, &CdbConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", q.label));
        assert!(out.stats.tasks_asked > 0, "{}", q.label);
    }
}

#[test]
fn perfect_workers_reach_perfect_f_measure() {
    let ds = paper_dataset(DatasetScale::paper_full().scaled(40), 9);
    let cdb = Cdb::with_database(ds.db);
    let q = &queries_for("paper")[0];
    let mut p = SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 20]), 3);
    let out = cdb.run_select(&q.cql, &ds.truth, &mut p, &CdbConfig::default()).unwrap();
    assert_eq!(out.metrics.f_measure, 1.0, "{:?}", out.metrics);
}

#[test]
fn budget_clause_limits_cost_and_keeps_precision() {
    let ds = paper_dataset(DatasetScale::paper_full().scaled(30), 7);
    let cdb = Cdb::with_database(ds.db);
    let base = &queries_for("paper")[0].cql;
    let sql = format!("{base} BUDGET 20");
    let mut p = platform(0.95, 4);
    let out = cdb.run_select(&sql, &ds.truth, &mut p, &CdbConfig::default()).unwrap();
    assert!(out.stats.tasks_asked <= 20);
    // Whatever the budget finds should be (almost always) correct.
    assert!(out.metrics.precision > 0.8, "{:?}", out.metrics);
}

#[test]
fn ddl_then_query_round_trip() {
    let mut cdb = Cdb::new();
    cdb.execute_ddl("CREATE TABLE A (x varchar(32))").unwrap();
    cdb.execute_ddl("CREATE CROWD TABLE B (y varchar(32))").unwrap();
    {
        let db = cdb.database_mut();
        db.table_mut("A").unwrap().push(vec!["hello world".into()]).unwrap();
        db.table_mut("B").unwrap().push(vec!["helo world".into()]).unwrap();
        assert!(db.table("B").unwrap().is_crowd());
    }
    let mut truth = QueryTruth::default();
    truth.add_join(cdb::storage::TupleId::new("A", 0), cdb::storage::TupleId::new("B", 0));
    let mut p = SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 5]), 0);
    let out = cdb
        .run_select(
            "SELECT * FROM A, B WHERE A.x CROWDJOIN B.y",
            &truth,
            &mut p,
            &CdbConfig::default(),
        )
        .unwrap();
    assert_eq!(out.stats.answers.len(), 1);
}

#[test]
fn deterministic_given_seeds() {
    let ds = paper_dataset(DatasetScale::paper_full().scaled(40), 13);
    let cdb = Cdb::with_database(ds.db);
    let q = &queries_for("paper")[1];
    let run = |seed: u64| {
        let mut p = platform(0.9, seed);
        let out = cdb.run_select(&q.cql, &ds.truth, &mut p, &CdbConfig::default()).unwrap();
        (out.stats.tasks_asked, out.stats.rounds, out.metrics.f_measure)
    };
    assert_eq!(run(8), run(8));
    // Different platform seeds may differ (different worker draws).
}
