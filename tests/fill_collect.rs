//! Integration tests for the CQL collection semantics executed through
//! the `Cdb` façade: `FILL` writes inferred values back into the table,
//! `COLLECT` appends crowd-contributed rows to a CROWD table.

use cdb::core::fillcollect::{CollectConfig, FillConfig};
use cdb::core::Cdb;
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::storage::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn platform(acc: f64, seed: u64) -> SimulatedPlatform {
    SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&vec![acc; 30]), seed)
}

fn setup() -> Cdb {
    let mut cdb = Cdb::new();
    cdb.execute_ddl(
        "CREATE TABLE Researcher (name varchar(64), gender CROWD varchar(16), \
         affiliation CROWD varchar(64))",
    )
    .unwrap();
    cdb.execute_ddl("CREATE CROWD TABLE University (name varchar(64), city varchar(64))").unwrap();
    {
        let db = cdb.database_mut();
        let r = db.table_mut("Researcher").unwrap();
        r.push(vec![Value::from("Ada"), Value::from("female"), Value::CNull]).unwrap();
        r.push(vec![Value::from("Bob"), Value::from("male"), Value::CNull]).unwrap();
        r.push(vec![Value::from("Cleo"), Value::from("female"), Value::CNull]).unwrap();
        r.push(vec![Value::from("Dan"), Value::from("male"), Value::from("Known Univ")]).unwrap();
    }
    cdb
}

#[test]
fn fill_writes_values_back() {
    let mut cdb = setup();
    let truths = ["Alpha Institute", "Beta Institute", "Gamma Institute", "unused"];
    let mut p = platform(1.0, 1);
    let out = cdb
        .run_fill(
            "FILL Researcher.affiliation",
            &|row| truths[row].to_string(),
            &mut p,
            &FillConfig::default(),
        )
        .unwrap();
    // Three CNULL cells; Dan's filled cell is untouched.
    assert_eq!(out.values.len(), 3);
    assert_eq!(out.correct, 3);
    let t = cdb.database().table("Researcher").unwrap();
    assert_eq!(t.cell(0, "affiliation").unwrap().as_text(), Some("Alpha Institute"));
    assert_eq!(t.cell(3, "affiliation").unwrap().as_text(), Some("Known Univ"));
}

#[test]
fn fill_respects_where_filter() {
    let mut cdb = setup();
    let mut p = platform(1.0, 2);
    let out = cdb
        .run_fill(
            "FILL Researcher.affiliation WHERE Researcher.gender = \"female\"",
            &|row| format!("Affiliation {row}"),
            &mut p,
            &FillConfig::default(),
        )
        .unwrap();
    assert_eq!(out.values.len(), 2); // Ada and Cleo only
    let t = cdb.database().table("Researcher").unwrap();
    assert!(t.cell(1, "affiliation").unwrap().is_cnull(), "Bob must stay unfilled");
}

#[test]
fn fill_budget_caps_slots() {
    let mut cdb = setup();
    let mut p = platform(1.0, 3);
    let out = cdb
        .run_fill(
            "FILL Researcher.affiliation BUDGET 1",
            &|row| format!("A{row}"),
            &mut p,
            &FillConfig::default(),
        )
        .unwrap();
    assert_eq!(out.values.len(), 1);
}

#[test]
fn fill_rejects_unknown_column() {
    let mut cdb = setup();
    let mut p = platform(1.0, 4);
    let err = cdb
        .run_fill("FILL Researcher.nope", &|_| String::new(), &mut p, &FillConfig::default())
        .unwrap_err();
    assert!(err.to_string().contains("unknown column"), "{err}");
}

#[test]
fn collect_appends_rows_to_crowd_table() {
    let mut cdb = setup();
    let universe: Vec<String> =
        (0..30).map(|i| format!("Inst {} {}", ["Qu", "Ma", "Al", "De", "Ve"][i % 5], i)).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let out = cdb
        .run_collect(
            "COLLECT University.name BUDGET 200",
            &universe,
            &mut rng,
            &CollectConfig { target: 10, dirty_prob: 0.0, ..CollectConfig::default() },
        )
        .unwrap();
    assert!(out.distinct >= 5, "{}", out.distinct);
    let t = cdb.database().table("University").unwrap();
    assert_eq!(t.row_count(), out.distinct);
    // Uncollected columns are CNULL, ready for FILL.
    assert!(t.cell(0, "city").unwrap().is_cnull());
    assert!(!t.cell(0, "name").unwrap().is_cnull());
}

#[test]
fn collect_rejects_non_crowd_table() {
    let mut cdb = setup();
    let mut rng = StdRng::seed_from_u64(6);
    let err = cdb
        .run_collect(
            "COLLECT Researcher.name",
            &["x".to_string()],
            &mut rng,
            &CollectConfig::default(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("not a CROWD table"), "{err}");
}

#[test]
fn collect_then_fill_pipeline() {
    // The paper's COLLECT + FILL workflow: collect university names, then
    // fill their cities.
    let mut cdb = setup();
    // Pairwise-distinct names (shared tokens kept short so the dedup step
    // does not fold different institutions together).
    let universe: Vec<String> = (0..20)
        .map(|i| {
            format!(
                "{} {} Campus",
                ["Northfield", "Southgate", "Eastwood", "Westbrook", "Midland"][i % 5],
                ["Physics", "Botany", "Letters", "Mining"][i / 5]
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    let collected = cdb
        .run_collect(
            "COLLECT University.name",
            &universe,
            &mut rng,
            &CollectConfig { target: 8, dirty_prob: 0.0, ..CollectConfig::default() },
        )
        .unwrap();
    assert!(collected.distinct >= 4);
    let mut p = platform(1.0, 8);
    let filled = cdb
        .run_fill(
            "FILL University.city",
            &|row| format!("City {row}"),
            &mut p,
            &FillConfig::default(),
        )
        .unwrap();
    assert_eq!(filled.values.len(), collected.distinct);
    let t = cdb.database().table("University").unwrap();
    for r in 0..t.row_count() {
        assert!(!t.cell(r, "city").unwrap().is_cnull(), "row {r} city unfilled");
    }
}
