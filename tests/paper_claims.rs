//! Integration tests pinning the paper's qualitative claims: who wins on
//! cost, latency and quality, and by roughly what kind of margin. These
//! are the "shape" assertions behind EXPERIMENTS.md.

use cdb::baselines::{crowddb_order, opt_tree_order, run_er, run_tree, ErMethod};
use cdb::core::executor::{true_answers, Executor, ExecutorConfig, QualityStrategy};
use cdb::core::metrics::precision_recall;
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::datagen::{paper_dataset, queries_for, DatasetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

struct Fixture {
    g: cdb::core::QueryGraph,
    truth: cdb::core::executor::EdgeTruth,
}

fn fixture(query_idx: usize, seed: u64) -> Fixture {
    let ds = paper_dataset(DatasetScale::paper_full().scaled(30), seed);
    let q = &queries_for("paper")[query_idx];
    let cdb_cql::Statement::Select(sel) = cdb_cql::parse(&q.cql).unwrap() else { panic!() };
    let analyzed = cdb_cql::analyze_select(&sel, &ds.db).unwrap();
    let g =
        cdb::core::build_query_graph(&analyzed, &ds.db, &cdb::core::GraphBuildConfig::default());
    let truth = ds.truth.edge_truth(&g);
    Fixture { g, truth }
}

fn platform(quality: f64, seed: u64) -> SimulatedPlatform {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let pool = WorkerPool::gaussian(50, quality, 0.05, &mut rng);
    SimulatedPlatform::new(Market::Amt, pool, seed)
}

/// Figure 8's headline: the graph model costs less than the rule-based
/// tree model, averaged over seeds.
#[test]
fn graph_model_beats_rule_based_tree_on_cost() {
    let mut cdb_total = 0usize;
    let mut crowddb_total = 0usize;
    for seed in 0..3u64 {
        let f = fixture(0, 17 + seed);
        let mut p = platform(0.95, seed);
        let stats = Executor::new(f.g.clone(), &f.truth, &mut p, ExecutorConfig::default()).run();
        cdb_total += stats.tasks_asked;
        let mut p = platform(0.95, seed);
        let tree = run_tree(&f.g, &f.truth, Some(&mut p), 5, &crowddb_order(&f.g));
        crowddb_total += tree.tasks_asked;
    }
    assert!(
        (cdb_total as f64) < 0.9 * crowddb_total as f64,
        "CDB {cdb_total} should clearly beat CrowdDB {crowddb_total}"
    );
}

/// Tuple-level optimization stays in the same cost regime as the
/// *optimal* tree order (Figure 8 shows CDB below OptTree on the paper's
/// crawled data; on synthetic data the margin is structure-dependent —
/// see EXPERIMENTS.md — but CDB must never blow past it).
#[test]
fn graph_model_at_most_optimal_tree_cost() {
    let mut cdb_total = 0usize;
    let mut opt_total = 0usize;
    for seed in 0..3u64 {
        let f = fixture(4, 23 + seed); // 3J2S: most predicates
        let mut p = platform(0.95, seed);
        let stats = Executor::new(f.g.clone(), &f.truth, &mut p, ExecutorConfig::default()).run();
        cdb_total += stats.tasks_asked;
        let order = opt_tree_order(&f.g, &f.truth);
        let mut p = platform(0.95, seed);
        opt_total += run_tree(&f.g, &f.truth, Some(&mut p), 5, &order).tasks_asked;
    }
    assert!(
        cdb_total as f64 <= 1.45 * opt_total as f64,
        "CDB {cdb_total} should stay within 1.45x of OptTree {opt_total}"
    );
}

/// Figure 10: graph-model latency stays in the same small-round regime as
/// the tree model, while ER methods need several times more rounds.
#[test]
fn latency_shape_graph_close_to_tree_er_far() {
    let f = fixture(2, 31); // 3J
    let mut p = platform(0.95, 1);
    let cdb_stats = Executor::new(f.g.clone(), &f.truth, &mut p, ExecutorConfig::default()).run();
    let mut p = platform(0.95, 1);
    let tree = run_tree(&f.g, &f.truth, Some(&mut p), 5, &crowddb_order(&f.g));
    let mut p = platform(0.95, 1);
    let er = run_er(&f.g, &f.truth, &mut p, 5, ErMethod::Trans);
    assert!(
        cdb_stats.rounds <= tree.rounds + 3,
        "graph rounds {} vs tree rounds {}",
        cdb_stats.rounds,
        tree.rounds
    );
    assert!(
        er.rounds >= 3 * tree.rounds,
        "ER rounds {} should be several times tree rounds {}",
        er.rounds,
        tree.rounds
    );
}

/// Figures 9/11: with mediocre workers, CDB+'s truth inference beats
/// majority voting on F-measure (averaged over seeds).
#[test]
fn quality_control_beats_majority_voting_with_weak_workers() {
    let f = fixture(0, 41);
    let reference: BTreeSet<_> =
        true_answers(&f.g, &f.truth).into_iter().map(|c| c.binding).collect();
    assert!(!reference.is_empty());
    let mut mv = 0.0;
    let mut em = 0.0;
    for seed in 0..6u64 {
        let mut p = platform(0.7, seed);
        let s = Executor::new(
            f.g.clone(),
            &f.truth,
            &mut p,
            ExecutorConfig { quality: QualityStrategy::MajorityVote, ..Default::default() },
        )
        .run();
        mv += precision_recall(&s.answer_bindings(), &reference).f_measure;
        let mut p = platform(0.7, seed);
        let s = Executor::new(
            f.g.clone(),
            &f.truth,
            &mut p,
            ExecutorConfig {
                quality: QualityStrategy::EmBayes,
                use_task_assignment: true,
                ..Default::default()
            },
        )
        .run();
        em += precision_recall(&s.answer_bindings(), &reference).f_measure;
    }
    assert!(em + 0.15 >= mv, "CDB+ {em} should not trail MV {mv}");
}

/// ER methods pay extra dedup tasks on selection-heavy queries (Figure 8:
/// Trans/ACD above CDB).
#[test]
fn er_methods_cost_more_than_cdb_on_selective_queries() {
    let f = fixture(1, 47); // 2J1S
    let mut p = platform(0.95, 1);
    let cdb_stats = Executor::new(f.g.clone(), &f.truth, &mut p, ExecutorConfig::default()).run();
    let mut p = platform(0.95, 1);
    let trans = run_er(&f.g, &f.truth, &mut p, 5, ErMethod::Trans);
    assert!(
        trans.tasks_asked as f64 >= 0.9 * cdb_stats.tasks_asked as f64,
        "Trans {} should not undercut CDB {} much",
        trans.tasks_asked,
        cdb_stats.tasks_asked
    );
}

/// Lemma 1 at system level: with an oracle for the colors, the chain
/// min-cut selection refutes every non-answer and is optimal on the tiny
/// running example (Figure 1's 3-vs-15 argument).
#[test]
fn known_color_selection_is_sound_on_generated_data() {
    use cdb::core::candidate::{enumerate_candidates, CandidateFilter};
    use cdb::core::cost::known::select_known_colors;
    let f = fixture(0, 53);
    let truth = |e: cdb::core::EdgeId| f.truth[&e];
    let sel = select_known_colors(&f.g, &truth);
    for c in enumerate_candidates(&f.g, CandidateFilter::Live) {
        let all_blue = c.edges.iter().all(|&e| f.truth[&e]);
        if all_blue {
            assert!(c.edges.iter().all(|e| sel.contains(e)), "answer not fully asked");
        } else {
            assert!(
                c.edges.iter().any(|&e| !f.truth[&e] && sel.contains(&e)),
                "candidate not refuted"
            );
        }
    }
    assert!(sel.len() <= f.g.open_edges().len());
}
