//! Executes the worked examples of `docs/CQL.md` end to end through the
//! `Cdb` façade. The statements are *extracted from the document itself*
//! (not copied here), so an edit that breaks a documented example breaks
//! this test — the execution half of the doc-drift gate
//! (`crates/cql/tests/doc_examples.rs` is the parse half).

use cdb::core::fillcollect::{CollectConfig, FillConfig};
use cdb::core::{Cdb, CdbConfig, QueryTruth};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::storage::{TupleId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every statement inside every ```cql fence of docs/CQL.md.
fn doc_statements() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/CQL.md");
    let doc = std::fs::read_to_string(path).expect("docs/CQL.md is readable");
    let mut stmts = Vec::new();
    let mut in_cql = false;
    let mut block = String::new();
    for line in doc.lines() {
        let fence = line.trim_start();
        if let Some(info) = fence.strip_prefix("```") {
            if in_cql {
                stmts.extend(
                    block.split(';').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                );
                block.clear();
                in_cql = false;
            } else {
                in_cql = info.trim() == "cql";
            }
            continue;
        }
        if in_cql {
            block.push_str(line);
            block.push('\n');
        }
    }
    stmts
}

/// The unique documented statement containing all of `needles`.
fn doc_stmt(stmts: &[String], needles: &[&str]) -> String {
    let hits: Vec<&String> =
        stmts.iter().filter(|s| needles.iter().all(|n| s.contains(n))).collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one docs/CQL.md statement containing {needles:?}, found {}",
        hits.len()
    );
    hits[0].clone()
}

fn platform(seed: u64) -> SimulatedPlatform {
    SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 20]), seed)
}

#[test]
fn the_cql_reference_examples_run_end_to_end() {
    let stmts = doc_statements();
    let mut cdb = Cdb::new();

    // DDL: all four documented tables.
    for needles in [
        &["TABLE Researcher"][..],
        &["CROWD TABLE University"],
        &["TABLE Paper"],
        &["TABLE Citation"],
    ] {
        cdb.execute_ddl(&doc_stmt(&stmts, needles)).expect("documented DDL executes");
    }
    {
        let db = cdb.database_mut();
        let r = db.table_mut("Researcher").unwrap();
        r.push(vec![Value::from("Ada"), Value::from("female"), Value::CNull]).unwrap();
        r.push(vec![
            Value::from("Bob"),
            Value::CNull,
            Value::from("Mass. Institute of Technology"),
        ])
        .unwrap();
        let p = db.table_mut("Paper").unwrap();
        p.push(vec![Value::from("Crowdsourced Joins At Scale"), Value::from("SIGMOD")]).unwrap();
        p.push(vec![Value::from("Learned Index Structures"), Value::from("SIGMOD")]).unwrap();
        p.push(vec![Value::from("Quantum Query Planning"), Value::from("VLDB")]).unwrap();
        let c = db.table_mut("Citation").unwrap();
        c.push(vec![Value::from("Crowdsourced Joins At Scale!"), Value::Int(40)]).unwrap();
        c.push(vec![Value::from("Learned Index Structures."), Value::Int(95)]).unwrap();
        c.push(vec![Value::from("Quantum Query Planning [ext]"), Value::Int(12)]).unwrap();
    }

    // COLLECT: crowd-contributed university rows (closed-universe sim).
    let universe: Vec<String> = [
        "University of California",
        "Massachusetts Institute of Technology",
        "Stanford University",
        "Princeton University",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rng = StdRng::seed_from_u64(11);
    let collected = cdb
        .run_collect(
            &doc_stmt(&stmts, &["COLLECT University.name"]),
            &universe,
            &mut rng,
            &CollectConfig { target: 4, dirty_prob: 0.0, ..CollectConfig::default() },
        )
        .expect("documented COLLECT executes");
    assert!(collected.distinct >= 2, "collected {} universities", collected.distinct);
    let uni = cdb.database().table("University").unwrap();
    assert_eq!(uni.row_count(), collected.distinct);
    assert!(uni.cell(0, "city").unwrap().is_cnull(), "uncollected columns start CNULL");

    // FILL with a machine filter: only Ada (female) gets her CNULL
    // affiliation filled; Bob's CNULL gender row does not match.
    let filled = cdb
        .run_fill(
            &doc_stmt(&stmts, &["FILL Researcher.affiliation", "WHERE"]),
            &|_| "Univ. of California".to_string(),
            &mut platform(1),
            &FillConfig::default(),
        )
        .expect("documented FILL executes");
    assert_eq!(filled.values.len(), 1);
    let researcher = cdb.database().table("Researcher").unwrap();
    assert_eq!(researcher.cell(0, "affiliation").unwrap().as_text(), Some("Univ. of California"));

    // FILL with a budget: Bob's CNULL gender is the only target cell.
    let filled = cdb
        .run_fill(
            &doc_stmt(&stmts, &["FILL Researcher.gender", "BUDGET"]),
            &|_| "male".to_string(),
            &mut platform(2),
            &FillConfig::default(),
        )
        .expect("documented FILL BUDGET executes");
    assert_eq!(filled.values.len(), 1);

    // The running-example crowd join, over the filled + collected data.
    let mut truth = QueryTruth::default();
    let uni = cdb.database().table("University").unwrap();
    for row in 0..uni.row_count() {
        let name = uni.cell(row, "name").unwrap().as_text().unwrap().to_string();
        if name.contains("California") {
            truth.add_join(TupleId::new("Researcher", 0), TupleId::new("University", row));
        }
        if name.contains("Technology") {
            truth.add_join(TupleId::new("Researcher", 1), TupleId::new("University", row));
        }
    }
    let out = cdb
        .run_select(
            &doc_stmt(&stmts, &["CROWDJOIN University.name", "SELECT *"]),
            &truth,
            &mut platform(3),
            &CdbConfig::default(),
        )
        .expect("documented crowd join executes");
    assert_eq!(out.stats.answers.len(), 2, "both researchers match a university");
    assert_eq!(out.metrics.f_measure, 1.0);

    // CROWDEQUAL + BUDGET: crowd selection narrows to the SIGMOD papers.
    let mut truth = QueryTruth::default();
    for i in 0..3 {
        truth.add_join(TupleId::new("Paper", i), TupleId::new("Citation", i));
    }
    truth.add_selection(TupleId::new("Paper", 0), "SIGMOD");
    truth.add_selection(TupleId::new("Paper", 1), "SIGMOD");
    let out = cdb
        .run_select(
            &doc_stmt(&stmts, &["CROWDEQUAL", "BUDGET"]),
            &truth,
            &mut platform(4),
            &CdbConfig::default(),
        )
        .expect("documented CROWDEQUAL executes");
    assert_eq!(out.stats.answers.len(), 2, "the VLDB paper is filtered out");

    // GROUP BY CROWD clusters the join answers by venue.
    let out = cdb
        .run_select(
            &doc_stmt(&stmts, &["GROUP BY CROWD"]),
            &truth,
            &mut platform(5),
            &CdbConfig::default(),
        )
        .expect("documented GROUP BY CROWD executes");
    let groups = out.groups.expect("GROUP BY requested");
    let mut sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 2], "two SIGMOD answers cluster, VLDB stands alone");

    // ORDER BY CROWD ... ASC ranks answers by pairwise comparisons.
    let out = cdb
        .run_select(
            &doc_stmt(&stmts, &["ORDER BY CROWD", "ASC"]),
            &truth,
            &mut platform(6),
            &CdbConfig::default(),
        )
        .expect("documented ORDER BY CROWD executes");
    let order = out.order.expect("ORDER BY requested");
    assert_eq!(order.len(), 3);
    assert!(out.post_tasks > 0, "pairwise comparisons cost tasks");

    // The qualified-star projection analyzes and plans.
    cdb.plan_select(&doc_stmt(&stmts, &["University.*"]), &CdbConfig::default().build)
        .expect("documented Table.* projection analyzes");
}
