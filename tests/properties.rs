//! Cross-crate property tests: on randomly generated query graphs, the
//! optimizer's invariants must hold regardless of structure, weights or
//! ground truth.

use cdb::core::candidate::{enumerate_candidates, CandidateFilter};
use cdb::core::cost::expectation::{expectation_order, pruning_expectations};
use cdb::core::cost::known::select_known_colors;
use cdb::core::executor::{true_answers, EdgeTruth, Executor, ExecutorConfig};
use cdb::core::latency::{edges_conflict, parallel_round};
use cdb::core::model::{EdgeId, PartKind, QueryGraph};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use proptest::prelude::*;

/// Strategy: a random 3-part chain graph with random edges/weights plus a
/// random ground truth per edge.
fn chain_graph() -> impl Strategy<Value = (QueryGraph, EdgeTruth)> {
    // sizes: up to 4 tuples per part; edge present with ~60%, weight in
    // (0.3, 1.0), truth biased by weight.
    (
        2usize..=4,
        2usize..=4,
        2usize..=4,
        prop::collection::vec((any::<bool>(), 0.3f64..0.99, any::<bool>()), 48),
    )
        .prop_map(|(na, nb, nc, edges)| {
            let mut g = QueryGraph::new();
            let a = g.add_part(PartKind::Table { name: "A".into() });
            let b = g.add_part(PartKind::Table { name: "B".into() });
            let c = g.add_part(PartKind::Table { name: "C".into() });
            let an: Vec<_> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
            let bn: Vec<_> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
            let cn: Vec<_> = (0..nc).map(|i| g.add_node(c, None, format!("c{i}"))).collect();
            let p_ab = g.add_predicate(a, b, true, "A~B");
            let p_bc = g.add_predicate(b, c, true, "B~C");
            let mut truth = EdgeTruth::new();
            let mut k = 0usize;
            for &x in &an {
                for &y in &bn {
                    let (present, w, t) = edges[k % edges.len()];
                    k += 1;
                    if present {
                        let e = g.add_edge(x, y, p_ab, w);
                        truth.insert(e, t);
                    }
                }
            }
            for &y in &bn {
                for &z in &cn {
                    let (present, w, t) = edges[k % edges.len()];
                    k += 1;
                    if present {
                        let e = g.add_edge(y, z, p_bc, w);
                        truth.insert(e, t);
                    }
                }
            }
            (g, truth)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The known-color selection refutes every non-answer and fully asks
    /// every answer, on arbitrary chain graphs.
    #[test]
    fn known_color_selection_sound((g, truth) in chain_graph()) {
        let oracle = |e: EdgeId| truth[&e];
        let sel = select_known_colors(&g, &oracle);
        for c in enumerate_candidates(&g, CandidateFilter::Live) {
            let all_blue = c.edges.iter().all(|&e| truth[&e]);
            if all_blue {
                prop_assert!(c.edges.iter().all(|e| sel.contains(e)));
            } else {
                prop_assert!(c.edges.iter().any(|&e| !truth[&e] && sel.contains(&e)));
            }
        }
    }

    /// With perfect workers, the executor returns exactly the true
    /// answers, no matter the structure.
    #[test]
    fn perfect_workers_exact_answers((g, truth) in chain_graph()) {
        let mut p = SimulatedPlatform::new(
            Market::Amt,
            WorkerPool::with_accuracies(&[1.0; 12]),
            0,
        );
        let stats = Executor::new(g.clone(), &truth, &mut p, ExecutorConfig::default()).run();
        let expected: std::collections::BTreeSet<_> =
            true_answers(&g, &truth).into_iter().map(|c| c.binding).collect();
        prop_assert_eq!(stats.answer_bindings(), expected);
    }

    /// The executor never asks more tasks than there are live edges, and
    /// never asks an invalid edge.
    #[test]
    fn executor_cost_bounded((g, truth) in chain_graph()) {
        let open_before = g.open_edges().len();
        let mut p = SimulatedPlatform::new(
            Market::Amt,
            WorkerPool::with_accuracies(&[1.0; 12]),
            1,
        );
        let stats = Executor::new(g, &truth, &mut p, ExecutorConfig::default()).run();
        prop_assert!(stats.tasks_asked <= open_before);
    }

    /// Rounds are made of pairwise non-conflicting edges.
    #[test]
    fn rounds_are_conflict_free((g, _) in chain_graph()) {
        let order = expectation_order(&g);
        let round = parallel_round(&g, &order);
        for (i, &e1) in round.iter().enumerate() {
            for &e2 in &round[i + 1..] {
                prop_assert!(!edges_conflict(&g, e1, e2));
            }
        }
    }

    /// Pruning expectations are finite and non-negative.
    #[test]
    fn expectations_well_formed((g, _) in chain_graph()) {
        for (_, ex) in pruning_expectations(&g) {
            prop_assert!(ex.is_finite());
            prop_assert!(ex >= 0.0);
        }
    }

    /// Budget executions never exceed the budget and keep perfect
    /// precision with perfect workers.
    #[test]
    fn budget_respected((g, truth) in chain_graph(), budget in 0usize..10) {
        let mut p = SimulatedPlatform::new(
            Market::Amt,
            WorkerPool::with_accuracies(&[1.0; 12]),
            2,
        );
        let stats = Executor::new(
            g.clone(),
            &truth,
            &mut p,
            ExecutorConfig { budget: Some(budget), ..ExecutorConfig::default() },
        )
        .run();
        prop_assert!(stats.tasks_asked <= budget);
        // All reported answers are genuine (perfect workers, so any
        // complete all-blue candidate is truly all-blue).
        let reference: std::collections::BTreeSet<_> =
            true_answers(&g, &truth).into_iter().map(|c| c.binding).collect();
        for b in stats.answer_bindings() {
            prop_assert!(reference.contains(&b));
        }
    }
}
