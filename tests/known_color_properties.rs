//! Property tests for the known-color task selection (§5.1.1) on star and
//! general structures — complementing the in-crate chain tests.

use cdb::core::candidate::{enumerate_candidates, CandidateFilter};
use cdb::core::cost::known::{join_structure, select_known_colors, JoinStructure};
use cdb::core::executor::EdgeTruth;
use cdb::core::model::{EdgeId, PartKind, QueryGraph};
use proptest::prelude::*;

/// Star graph: one center part with `nc` tuples joined to three leaf parts.
fn star_graph() -> impl Strategy<Value = (QueryGraph, EdgeTruth)> {
    (1usize..=3, prop::collection::vec((any::<bool>(), 0.3f64..0.99, any::<bool>()), 36)).prop_map(
        |(nc, edges)| {
            let mut g = QueryGraph::new();
            let center = g.add_part(PartKind::Table { name: "C".into() });
            let leaves: Vec<_> = ["X", "Y", "Z"]
                .iter()
                .map(|n| g.add_part(PartKind::Table { name: n.to_string() }))
                .collect();
            let cn: Vec<_> = (0..nc).map(|i| g.add_node(center, None, format!("c{i}"))).collect();
            let mut truth = EdgeTruth::new();
            let mut k = 0usize;
            for &leaf in &leaves {
                let pred = g.add_predicate(center, leaf, true, "c~leaf");
                let ln: Vec<_> = (0..2).map(|i| g.add_node(leaf, None, format!("l{i}"))).collect();
                for &c in &cn {
                    for &l in &ln {
                        let (present, w, t) = edges[k % edges.len()];
                        k += 1;
                        if present {
                            let e = g.add_edge(c, l, pred, w);
                            truth.insert(e, t);
                        }
                    }
                }
            }
            (g, truth)
        },
    )
}

/// Triangle (cyclic) graph over three parts.
fn cyclic_graph() -> impl Strategy<Value = (QueryGraph, EdgeTruth)> {
    prop::collection::vec((any::<bool>(), 0.3f64..0.99, any::<bool>()), 27).prop_map(|edges| {
        let mut g = QueryGraph::new();
        let parts: Vec<_> = ["A", "B", "C"]
            .iter()
            .map(|n| g.add_part(PartKind::Table { name: n.to_string() }))
            .collect();
        let nodes: Vec<Vec<_>> = parts
            .iter()
            .map(|&p| (0..2).map(|i| g.add_node(p, None, format!("n{i}"))).collect())
            .collect();
        let mut truth = EdgeTruth::new();
        let mut k = 0usize;
        for i in 0..3 {
            let j = (i + 1) % 3;
            let pred = g.add_predicate(parts[i], parts[j], true, "ring");
            for &u in &nodes[i] {
                for &v in &nodes[j] {
                    let (present, w, t) = edges[k % edges.len()];
                    k += 1;
                    if present {
                        let e = g.add_edge(u, v, pred, w);
                        truth.insert(e, t);
                    }
                }
            }
        }
        (g, truth)
    })
}

fn selection_is_sound(g: &QueryGraph, truth: &EdgeTruth) -> Result<(), TestCaseError> {
    let oracle = |e: EdgeId| truth[&e];
    let sel = select_known_colors(g, &oracle);
    for c in enumerate_candidates(g, CandidateFilter::Live) {
        let all_blue = c.edges.iter().all(|&e| truth[&e]);
        if all_blue {
            prop_assert!(
                c.edges.iter().all(|e| sel.contains(e)),
                "answer candidate not fully asked"
            );
        } else {
            prop_assert!(
                c.edges.iter().any(|&e| !truth[&e] && sel.contains(&e)),
                "candidate not refuted by any asked RED edge"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn star_selection_sound((g, truth) in star_graph()) {
        // Structure sanity: with edges on all three predicates this is a
        // star (single-center classification needs ≥3 active parts).
        let _ = matches!(join_structure(&g), JoinStructure::Star(_) | JoinStructure::General | JoinStructure::Chain(_));
        selection_is_sound(&g, &truth)?;
    }

    #[test]
    fn cyclic_selection_sound((g, truth) in cyclic_graph()) {
        selection_is_sound(&g, &truth)?;
    }

    #[test]
    fn selection_never_exceeds_live_edges((g, truth) in star_graph()) {
        let oracle = |e: EdgeId| truth[&e];
        let sel = select_known_colors(&g, &oracle);
        let live = (0..g.edge_count()).map(EdgeId).filter(|&e| g.edge_live(e)).count();
        prop_assert!(sel.len() <= live);
        // No duplicates.
        let set: std::collections::BTreeSet<_> = sel.iter().collect();
        prop_assert_eq!(set.len(), sel.len());
    }
}
