//! Quickstart: define tables with CQL DDL, load a few rows, run a
//! crowd-powered join end to end against a simulated crowd, and print the
//! answers with their cost/latency/quality metrics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cdb::core::{Cdb, CdbConfig, QueryTruth};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::storage::{TupleId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Define the schema with CQL DDL.
    let mut cdb = Cdb::new();
    cdb.execute_ddl(
        "CREATE TABLE Researcher (name varchar(64), gender CROWD varchar(16), \
         affiliation varchar(64))",
    )
    .expect("valid DDL");
    cdb.execute_ddl("CREATE TABLE University (name varchar(64), country varchar(16))")
        .expect("valid DDL");

    // 2. Load data. Affiliations are dirty variants of university names —
    //    exactly the situation where equi-joins fail and the crowd helps.
    let rows: &[(&str, &str)] = &[
        ("Michael Franklin", "Univ. of California"),
        ("Sam Madden", "MIT CSAIL"),
        ("David DeWitt", "Univ. of Wisconsin"),
        ("Jennifer Widom", "Stanford Univ."),
    ];
    let unis: &[(&str, &str)] = &[
        ("University of California", "USA"),
        ("University of Wisconsin", "USA"),
        ("Stanford University", "USA"),
        ("University of Cambridge", "UK"),
    ];
    {
        let db = cdb.database_mut();
        let r = db.table_mut("Researcher").expect("created above");
        for (name, aff) in rows {
            r.push(vec![Value::from(*name), Value::CNull, Value::from(*aff)])
                .expect("row matches schema");
        }
        let u = db.table_mut("University").expect("created above");
        for (name, country) in unis {
            u.push(vec![Value::from(*name), Value::from(*country)]).expect("row matches schema");
        }
    }

    // 3. Ground truth (drives the simulated workers and the scoring).
    let mut truth = QueryTruth::default();
    truth.add_join(TupleId::new("Researcher", 0), TupleId::new("University", 0));
    truth.add_join(TupleId::new("Researcher", 2), TupleId::new("University", 1));
    truth.add_join(TupleId::new("Researcher", 3), TupleId::new("University", 2));

    // 4. A simulated crowd: 30 workers with accuracy ~ N(0.92, 0.0025).
    let mut rng = StdRng::seed_from_u64(1);
    let pool = WorkerPool::gaussian(30, 0.92, 0.05, &mut rng);
    let mut platform = SimulatedPlatform::new(Market::Amt, pool, 21);

    // 5. Run a crowd-powered join.
    let sql = "SELECT Researcher.name, University.name \
               FROM Researcher, University \
               WHERE Researcher.affiliation CROWDJOIN University.name";
    println!("CQL> {sql}\n");
    let out =
        cdb.run_select(sql, &truth, &mut platform, &CdbConfig::default()).expect("query runs");

    // 6. Report.
    let g = cdb.plan_select(sql, &CdbConfig::default().build).expect("plan");
    println!("query graph: {} tuples, {} candidate pairs", g.node_count(), g.edge_count());
    println!(
        "crowd effort: {} tasks in {} rounds ({} worker answers)",
        out.stats.tasks_asked, out.stats.rounds, out.stats.assignments
    );
    println!(
        "quality:      precision {:.2}, recall {:.2}, F {:.2} ({} true answers)",
        out.metrics.precision, out.metrics.recall, out.metrics.f_measure, out.true_answer_count
    );
    println!("\nanswers:");
    for cand in &out.stats.answers {
        let pair: Vec<String> = cand
            .binding
            .iter()
            .filter_map(|&n| g.node_tuple(n).cloned())
            .map(|t| {
                let table = cdb.database().table(&t.table).expect("known table");
                let first_col = &table.schema().columns()[0].name;
                format!("{}", table.cell(t.row, first_col).expect("cell"))
            })
            .collect();
        println!("  {}", pair.join("  ⋈  "));
    }
}
