//! Budget-aware querying (§5.1.3 / Figures 18–19): give CDB a hard task
//! budget with CQL's `BUDGET` keyword and watch recall grow with budget
//! while the DFS baseline lags.
//!
//! ```sh
//! cargo run --example budget_query
//! ```

use cdb::baselines::budget_baseline;
use cdb::core::executor::{true_answers, Executor, ExecutorConfig};
use cdb::core::metrics::precision_recall;
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::datagen::{paper_dataset, queries_for, DatasetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn main() {
    // A 1/20-scale paper dataset with exact ground truth.
    let ds = paper_dataset(DatasetScale::paper_full().scaled(20), 11);
    let query = &queries_for("paper")[0]; // 2J
    println!("CQL> {} BUDGET <b>\n", query.cql);

    let cdb_cql::Statement::Select(q) = cdb_cql::parse(&query.cql).expect("parses") else {
        unreachable!()
    };
    let analyzed = cdb_cql::analyze_select(&q, &ds.db).expect("analyzes");
    let g =
        cdb::core::build_query_graph(&analyzed, &ds.db, &cdb::core::GraphBuildConfig::default());
    let truth = ds.truth.edge_truth(&g);
    let reference: BTreeSet<_> = true_answers(&g, &truth).into_iter().map(|c| c.binding).collect();
    println!("graph: {} edges; {} true answers reachable\n", g.edge_count(), reference.len());

    println!(
        "{:<10}{:>14}{:>14}{:>16}{:>16}",
        "budget", "CDB recall", "base recall", "CDB precision", "base precision"
    );
    let total = g.open_edges().len();
    for frac in [1usize, 2, 4, 6, 8] {
        let budget = total * frac / 8;
        // CDB's budget-aware selection: most promising candidates first.
        let mut rng = StdRng::seed_from_u64(3);
        let pool = WorkerPool::gaussian(40, 0.95, 0.05, &mut rng);
        let mut p1 = SimulatedPlatform::new(Market::Amt, pool.clone(), 5);
        let stats = Executor::new(
            g.clone(),
            &truth,
            &mut p1,
            ExecutorConfig { budget: Some(budget), ..ExecutorConfig::default() },
        )
        .run();
        let cdb_m = precision_recall(&stats.answer_bindings(), &reference);

        // Baseline: best-table-order DFS (§6.3.3).
        let mut p2 = SimulatedPlatform::new(Market::Amt, pool, 5);
        let base = budget_baseline(&g, &truth, &mut p2, 5, budget);
        let base_m = precision_recall(&base.answers, &reference);

        println!(
            "{:<10}{:>14.2}{:>14.2}{:>16.2}{:>16.2}",
            budget, cdb_m.recall, base_m.recall, cdb_m.precision, base_m.precision
        );
    }
    println!("\nCDB spends the budget on high-probability candidate chains first,");
    println!("so recall climbs steeply; the baseline wanders depth-first.");
}
