//! Crowd-powered ORDER BY and GROUP BY (the §4.2 Remark): after the
//! crowd-based join resolves, the result set is ranked by pairwise
//! comparison tasks and grouped by crowdsourced key equality — plus a
//! cross-market deployment of the comparison HITs.
//!
//! ```sh
//! cargo run --example sort_group
//! ```

use cdb::core::{Cdb, CdbConfig, QueryTruth};
use cdb::crowd::{
    CrossMarketDeployer, Market, MarketSlot, SimulatedPlatform, Task, TaskId, WorkerPool,
};
use cdb::storage::{TupleId, Value};

fn main() {
    // Papers joined to their citation counts, then ranked by the crowd.
    let mut cdb = Cdb::new();
    cdb.execute_ddl("CREATE TABLE Paper (title varchar(64), venue varchar(32))").unwrap();
    cdb.execute_ddl("CREATE TABLE Citation (title varchar(64), number int)").unwrap();
    let papers = [
        ("Crowdsourced Joins At Scale", "SIGMOD", 40),
        ("Learned Index Structures", "SIGMOD", 95),
        ("Quantum Query Planning", "VLDB", 12),
        ("Adaptive Stream Sampling", "VLDB", 63),
        ("Holistic Truth Discovery", "KDD", 27),
    ];
    let mut truth = QueryTruth::default();
    {
        let db = cdb.database_mut();
        for (i, (title, venue, number)) in papers.iter().enumerate() {
            db.table_mut("Paper")
                .unwrap()
                .push(vec![Value::from(*title), Value::from(*venue)])
                .unwrap();
            db.table_mut("Citation")
                .unwrap()
                .push(vec![Value::from(format!("{title} [cited]")), Value::Int(*number)])
                .unwrap();
            truth.add_join(TupleId::new("Paper", i), TupleId::new("Citation", i));
        }
    }

    let sql = "SELECT * FROM Paper, Citation \
               WHERE Paper.title CROWDJOIN Citation.title \
               GROUP BY CROWD Paper.venue \
               ORDER BY CROWD Citation.number DESC";
    println!("CQL> {sql}\n");

    let mut platform =
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[0.95; 20]), 11);
    let out = cdb.run_select(sql, &truth, &mut platform, &CdbConfig::default()).unwrap();
    println!(
        "join: {} answers with {} tasks; post-ops cost {} extra tasks\n",
        out.stats.answers.len(),
        out.stats.tasks_asked,
        out.post_tasks
    );

    let g = cdb
        .plan_select(
            "SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title",
            &CdbConfig::default().build,
        )
        .unwrap();
    let title_of = |answer_idx: usize| -> String {
        out.stats.answers[answer_idx]
            .binding
            .iter()
            .filter_map(|&n| g.node_tuple(n))
            .find(|t| t.table == "Paper")
            .map(|t| {
                cdb.database().table("Paper").unwrap().cell(t.row, "title").unwrap().to_string()
            })
            .unwrap_or_default()
    };

    println!("crowd-ranked by citations (descending):");
    for (rank, &i) in out.order.as_ref().unwrap().iter().enumerate() {
        println!("  {}. {}", rank + 1, title_of(i));
    }

    println!("\ncrowd-grouped by venue:");
    for (k, group) in out.groups.as_ref().unwrap().iter().enumerate() {
        let titles: Vec<String> = group.iter().map(|&i| title_of(i)).collect();
        println!("  group {}: {}", k + 1, titles.join(" | "));
    }

    // Bonus: the same comparison HITs deployed across three markets at
    // once (§2.2 — cross-market deployment).
    let mut deployer = CrossMarketDeployer::new(vec![
        MarketSlot {
            platform: SimulatedPlatform::new(
                Market::Amt,
                WorkerPool::with_accuracies(&[0.95; 10]),
                1,
            ),
            share: 2.0,
        },
        MarketSlot {
            platform: SimulatedPlatform::new(
                Market::CrowdFlower,
                WorkerPool::with_accuracies(&[0.9; 10]),
                2,
            ),
            share: 1.0,
        },
        MarketSlot {
            platform: SimulatedPlatform::new(
                Market::ChinaCrowd,
                WorkerPool::with_accuracies(&[0.9; 10]),
                3,
            ),
            share: 1.0,
        },
    ]);
    let tasks: Vec<Task> = (0..8)
        .map(|i| Task::join_check(TaskId(i), "left value", "right value", i % 2 == 0))
        .collect();
    let assignments = deployer.ask_round(&tasks, 3);
    println!(
        "\ncross-market deployment: {} tasks -> {} assignments across {} markets \
         ({} / {} / {} tasks per market)",
        tasks.len(),
        assignments.len(),
        deployer.market_count(),
        deployer.platform(0).log().task_count(),
        deployer.platform(1).log().task_count(),
        deployer.platform(2).log().task_count(),
    );
}
