//! The paper's running example (Table 1 / Figures 1 and 4): four small
//! tables joined by three CROWDJOIN predicates, with three true answers.
//! Demonstrates the headline claim — the graph model's tuple-level
//! optimization asks far fewer tasks than any table-level join order.
//!
//! ```sh
//! cargo run --example paper_example
//! ```

use cdb::baselines::{opt_tree_order, run_tree};
use cdb::core::executor::{true_answers, Executor, ExecutorConfig};
use cdb::core::{build_query_graph, GraphBuildConfig};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::datagen::paper_example_dataset;

fn main() {
    let (db, truth) = paper_example_dataset();
    let sql = "SELECT * FROM Paper, Researcher, Citation, University \
               WHERE Paper.author CROWDJOIN Researcher.name AND \
               Paper.title CROWDJOIN Citation.title AND \
               Researcher.affiliation CROWDJOIN University.name";
    println!("CQL> {sql}\n");

    // Build the graph query model (Definition 1).
    let cdb_cql::Statement::Select(q) = cdb_cql::parse(sql).expect("parses") else {
        unreachable!()
    };
    let analyzed = cdb_cql::analyze_select(&q, &db).expect("analyzes");
    let g = build_query_graph(&analyzed, &db, &GraphBuildConfig::default());
    let edge_truth = truth.edge_truth(&g);
    println!(
        "graph model: {} tuple vertices, {} candidate edges across {} predicates",
        g.node_count(),
        g.edge_count(),
        g.predicate_count()
    );
    let reference = true_answers(&g, &edge_truth);
    println!("ground truth: {} complete BLUE chains (the paper's 3 answers)\n", reference.len());

    // CDB: expectation-based tuple-level selection.
    let pool = WorkerPool::with_accuracies(&[1.0; 10]); // error-free crowd isolates cost
    let mut platform = SimulatedPlatform::new(Market::Amt, pool.clone(), 1);
    let stats =
        Executor::new(g.clone(), &edge_truth, &mut platform, ExecutorConfig::default()).run();
    println!(
        "CDB   (graph model):       {:>3} tasks, {} rounds, {} answers",
        stats.tasks_asked,
        stats.rounds,
        stats.answers.len()
    );

    // The best possible tree model: enumerate all join orders with oracle
    // colors and take the cheapest.
    let order = opt_tree_order(&g, &edge_truth);
    let tree = run_tree(&g, &edge_truth, None, 1, &order);
    println!(
        "OptTree (best tree order): {:>3} tasks, {} rounds, {} answers",
        tree.tasks_asked,
        tree.rounds,
        tree.answers.len()
    );
    println!(
        "\ntuple-level optimization saves {} tasks ({}%) over the best table-level order",
        tree.tasks_asked.saturating_sub(stats.tasks_asked),
        (100 * tree.tasks_asked.saturating_sub(stats.tasks_asked)) / tree.tasks_asked.max(1)
    );

    // Show the answers.
    println!("\nanswers found:");
    for cand in &stats.answers {
        let chain: Vec<String> = cand
            .binding
            .iter()
            .filter_map(|&n| g.node_tuple(n).cloned())
            .map(|t| format!("{}[{}]", t.table, t.row))
            .collect();
        println!("  {}", chain.join(" — "));
    }
}
