//! Crowd-powered data collection (§3, Figure 17): COLLECT a table of
//! values with autocompletion-based duplicate control, then FILL missing
//! attributes with early stopping — versus a Deco-style baseline with
//! neither.
//!
//! ```sh
//! cargo run --example collect_fill
//! ```

use cdb::core::fillcollect::{execute_collect, execute_fill, CollectConfig, FillConfig};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::datagen::{paper_dataset, DatasetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The universe of collectible values: university names of the paper
    // dataset (the paper collects "the top-100 universities in the USA").
    let ds = paper_dataset(DatasetScale::paper_full().scaled(10), 3);
    let universe = &ds.universe;
    println!("universe: {} distinct university names\n", universe.len());

    // COLLECT: how many questions to gather 60 distinct universities?
    println!("== COLLECT University.name (target: 60 distinct) ==");
    let mut rng = StdRng::seed_from_u64(9);
    let cdb_run = execute_collect(
        universe,
        &mut rng,
        &CollectConfig { target: 60, ..CollectConfig::default() },
    );
    let deco_run = execute_collect(
        universe,
        &mut rng,
        &CollectConfig { target: 60, autocomplete: false, ..CollectConfig::default() },
    );
    println!(
        "CDB  (autocompletion):   {} questions -> {} distinct",
        cdb_run.questions, cdb_run.distinct
    );
    println!(
        "Deco (no dedup control): {} questions -> {} distinct",
        deco_run.questions, deco_run.distinct
    );
    println!(
        "duplicate control saves {:.1}x\n",
        deco_run.questions as f64 / cdb_run.questions.max(1) as f64
    );

    // FILL: ask the crowd for 50 missing values; CDB asks 3 workers and
    // only asks 2 more when the first three disagree.
    println!("== FILL University.state for 50 universities ==");
    let truths: Vec<String> = universe.iter().take(50).cloned().collect();
    let mut rng = StdRng::seed_from_u64(4);
    let pool = WorkerPool::gaussian(40, 0.93, 0.05, &mut rng);
    let mut p1 = SimulatedPlatform::new(Market::Amt, pool.clone(), 2);
    let cdb_fill = execute_fill(&truths, &mut p1, &FillConfig::default());
    let mut p2 = SimulatedPlatform::new(Market::Amt, pool, 2);
    let deco_fill =
        execute_fill(&truths, &mut p2, &FillConfig { early_stop: false, ..FillConfig::default() });
    println!(
        "CDB  (early stop): {} questions, {}/50 correct",
        cdb_fill.questions, cdb_fill.correct
    );
    println!(
        "Deco (always 5):   {} questions, {}/50 correct",
        deco_fill.questions, deco_fill.correct
    );
    println!(
        "early stopping saves {:.0}% of the fill cost at equal accuracy",
        100.0 * (1.0 - cdb_fill.questions as f64 / deco_fill.questions as f64)
    );
}
